// Tests for the experiment-sweep engine (src/metrics/sweep): pool correctness and
// determinism under parallel dispatch, JSON schema validity, baseline-comparator edge
// cases, and a golden-file check of the committed smoke baseline's structure.

#include <atomic>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/metrics/sweep/baseline.h"
#include "src/metrics/sweep/cell.h"
#include "src/metrics/sweep/matrix.h"
#include "src/metrics/sweep/pool.h"
#include "src/metrics/sweep/render.h"
#include "src/metrics/sweep/report.h"
#include "src/metrics/sweep/runner.h"
#include "src/obs/json_lite.h"

namespace ace {
namespace {

// A tiny matrix that still covers both cell modes and a G/L override — small enough
// to run twice in a unit test, varied enough to catch per-run isolation bugs.
std::vector<SweepCell> TinyMatrix() {
  std::vector<SweepCell> cells;
  SweepMatrix experiments;
  experiments.apps = {"IMatMult", "Gfetch", "ParMult"};
  experiments.threads = {3};
  experiments.scales = {0.1};
  cells = experiments.Enumerate();
  SweepMatrix numa_only;
  numa_only.apps = {"IMatMult"};
  numa_only.threads = {3};
  numa_only.scales = {0.1};
  numa_only.move_thresholds = {0, kInfMoveThreshold};
  numa_only.mode = CellMode::kNumaOnly;
  AppendUnique(cells, numa_only.Enumerate());
  SweepMatrix gl;
  gl.apps = {"Gfetch"};
  gl.threads = {3};
  gl.scales = {0.1};
  gl.gl_ratios = {3.0};
  AppendUnique(cells, gl.Enumerate());
  return cells;
}

TEST(WorkStealingPool, ExecutesEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr std::size_t kTasks = 257;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) {
    h = 0;
  }
  WorkStealingPool::RunStats stats = pool.Run(kTasks, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
  std::uint64_t total = 0;
  for (std::uint64_t per_worker : stats.executed) {
    total += per_worker;
  }
  EXPECT_EQ(total, kTasks);
}

TEST(WorkStealingPool, UnevenTasksAllComplete) {
  // Tasks with wildly different costs: stealing must drain the long tail.
  WorkStealingPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  pool.Run(64, [&](std::size_t i) {
    volatile std::uint64_t spin = 0;
    for (std::uint64_t k = 0; k < (i % 7) * 50000; ++k) {
      spin += k;
    }
    sum += i;
  });
  EXPECT_EQ(sum.load(), 64ull * 63 / 2);
}

TEST(WorkStealingPool, SingleWorkerRunsInOrder) {
  WorkStealingPool pool(1);
  std::vector<std::size_t> order;
  pool.Run(10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  // One worker pops from the back of its own deque: reverse seeding order.
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], order.size() - 1 - i);
  }
}

// The acceptance property of the whole engine: the same matrix produces
// byte-identical serialized cells whether dispatched on 1 worker or 8.
TEST(SweepDeterminism, ParallelDispatchDoesNotChangeMetrics) {
  std::vector<SweepCell> cells = TinyMatrix();

  SweepOptions serial;
  serial.workers = 1;
  SweepResult r1 = RunSweep("tiny", cells, serial);

  SweepOptions parallel;
  parallel.workers = 8;
  SweepResult r8 = RunSweep("tiny", cells, parallel);

  std::string json1 = SerializeSweep(r1, /*include_host=*/false);
  std::string json8 = SerializeSweep(r8, /*include_host=*/false);
  EXPECT_EQ(json1, json8);
  EXPECT_TRUE(r1.AllOk());
}

TEST(SweepRunner, CellMetricsCoverBothModes) {
  MachineConfig config;
  SweepCell full;
  full.app = "IMatMult";
  full.threads = 3;
  full.scale = 0.1;
  CellResult full_result = RunCell(full, config);
  EXPECT_TRUE(full_result.ok);
  EXPECT_GT(full_result.MetricOr("t_numa", 0.0), 0.0);
  EXPECT_GT(full_result.MetricOr("t_global", 0.0), 0.0);
  EXPECT_GT(full_result.MetricOr("t_local", 0.0), 0.0);
  EXPECT_GE(full_result.MetricOr("gamma", 0.0), 1.0 - 1e-9);

  SweepCell numa_only = full;
  numa_only.mode = CellMode::kNumaOnly;
  CellResult numa_result = RunCell(numa_only, config);
  EXPECT_TRUE(numa_result.ok);
  EXPECT_GT(numa_result.MetricOr("t_numa", 0.0), 0.0);
  // No global/local placement in this mode.
  EXPECT_TRUE(std::isnan(numa_result.MetricOr("t_global", std::nan(""))));
}

TEST(SweepRunner, GlRatioOverrideScalesGlobalLatency) {
  MachineConfig config;
  SweepCell slow_global;
  slow_global.app = "Gfetch";  // all time in global fetches: Tnuma tracks the ratio
  slow_global.threads = 3;
  slow_global.scale = 0.1;
  slow_global.gl_ratio = 4.0;
  SweepCell normal = slow_global;
  normal.gl_ratio = 0.0;
  double t_slow = RunCell(slow_global, config).MetricOr("t_numa", 0.0);
  double t_normal = RunCell(normal, config).MetricOr("t_numa", 0.0);
  EXPECT_GT(t_slow, t_normal * 1.3);
}

TEST(SweepCellKey, EncodesEveryAxisAndIsUniqueAcrossSuites) {
  SweepCell cell;
  cell.app = "FFT";
  cell.threads = 7;
  cell.scale = 0.25;
  cell.move_threshold = kInfMoveThreshold;
  cell.gl_ratio = 1.5;
  EXPECT_EQ(cell.Key(), "FFT/t7/s0.25/mtinf/gl1.5");

  for (const std::string& name : SuiteNames()) {
    Suite suite = MakeSuite(name);
    std::set<std::string> keys;
    for (const SweepCell& c : suite.cells) {
      EXPECT_TRUE(keys.insert(c.Key()).second)
          << "duplicate key in suite " << name << ": " << c.Key();
    }
    EXPECT_FALSE(suite.cells.empty()) << name;
  }
}

// --- serialization schema ----------------------------------------------------------

SweepResult TinyResult() {
  SweepOptions options;
  options.workers = 2;
  return RunSweep("tiny", TinyMatrix(), options);
}

TEST(SweepReport, SerializedResultValidatesAndParses) {
  SweepResult result = TinyResult();
  std::string json = SerializeSweep(result, /*include_host=*/true);
  std::string error;
  EXPECT_TRUE(ValidateSweepJson(json, &error)) << error;

  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.StringOr("schema", ""), kBenchSchemaName);
  EXPECT_EQ(doc.StringOr("suite", ""), "tiny");
  ASSERT_NE(doc.Find("host"), nullptr);
  EXPECT_EQ(doc.Find("host")->NumberOr("workers", 0), 2.0);
  ASSERT_NE(doc.Find("cells"), nullptr);
  EXPECT_EQ(doc.Find("cells")->items.size(), TinyMatrix().size());

  // ParMult makes essentially no data references: alpha undefined => null in JSON,
  // and the round trip preserves that.
  bool saw_parmult = false;
  for (const JsonValue& cell : doc.Find("cells")->items) {
    if (cell.StringOr("app", "") == "ParMult") {
      saw_parmult = true;
      const JsonValue* alpha = cell.Find("metrics")->Find("alpha");
      ASSERT_NE(alpha, nullptr);
      EXPECT_EQ(alpha->kind, JsonValue::Kind::kNull);
    }
  }
  EXPECT_TRUE(saw_parmult);

  // The wall-time-free form must drop host and nothing else.
  std::string bare = SerializeSweep(result, /*include_host=*/false);
  EXPECT_TRUE(ValidateSweepJson(bare, &error)) << error;
  EXPECT_EQ(bare.find("wall_seconds"), std::string::npos);
}

TEST(SweepReport, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(ValidateSweepJson("{", &error));
  EXPECT_FALSE(ValidateSweepJson("{}", &error));
  EXPECT_FALSE(ValidateSweepJson(R"({"schema":"wrong","suite":"x","machine":{},"cells":[]})",
                                 &error));
  // Cell missing its metrics object.
  EXPECT_FALSE(ValidateSweepJson(
      R"({"schema":"ace-bench-v1","suite":"x","machine":{},
          "cells":[{"key":"k","app":"a","mode":"full","threads":1,"scale":1,
                    "move_threshold":4,"gl_ratio":0,"ok":true}]})",
      &error));
  EXPECT_NE(error.find("metrics"), std::string::npos);
}

// --- baseline comparator -----------------------------------------------------------

// Build a baseline document from a result, with the given tolerance JSON fragment.
std::string BaselineFrom(const SweepResult& result, const std::string& tolerance_members) {
  std::string json = SerializeSweep(result, /*include_host=*/true);
  // Splice the tolerance members right after the opening brace.
  return "{" + tolerance_members + json.substr(1);
}

TEST(SweepBaseline, IdenticalResultPasses) {
  SweepResult result = TinyResult();
  std::string baseline = BaselineFrom(result, R"("default_tolerance":0.0,)");
  BaselineComparison cmp = CompareAgainstBaseline(result, baseline);
  EXPECT_TRUE(cmp.loaded);
  EXPECT_FALSE(cmp.HasRegression()) << RenderComparison(cmp);
  EXPECT_EQ(cmp.cells_compared, static_cast<int>(result.cells.size()));
  EXPECT_EQ(cmp.new_cells, 0);
}

TEST(SweepBaseline, PerturbedMetricBeyondToleranceIsARegression) {
  SweepResult result = TinyResult();
  std::string baseline = BaselineFrom(result, R"("default_tolerance":0.02,)");

  SweepResult perturbed = result;
  for (auto& [name, value] : perturbed.cells[0].metrics) {
    if (name == "t_numa") {
      value *= 1.10;  // +10% simulated time: a clear regression at 2% tolerance
    }
  }
  BaselineComparison cmp = CompareAgainstBaseline(perturbed, baseline);
  EXPECT_TRUE(cmp.HasRegression());

  // The same perturbation passes under a loose per-metric tolerance.
  std::string loose = BaselineFrom(
      result, R"("default_tolerance":0.02,"tolerances":{"t_numa":0.5},)");
  cmp = CompareAgainstBaseline(perturbed, loose);
  EXPECT_FALSE(cmp.HasRegression()) << RenderComparison(cmp);
}

TEST(SweepBaseline, MissingCellIsARegression) {
  SweepResult result = TinyResult();
  std::string baseline = BaselineFrom(result, R"("default_tolerance":0.0,)");
  SweepResult shrunk = result;
  shrunk.cells.pop_back();
  BaselineComparison cmp = CompareAgainstBaseline(shrunk, baseline);
  EXPECT_TRUE(cmp.HasRegression());
  bool saw_missing = false;
  for (const BaselineIssue& issue : cmp.issues) {
    saw_missing = saw_missing || issue.detail.find("missing from results") != std::string::npos;
  }
  EXPECT_TRUE(saw_missing);
}

TEST(SweepBaseline, NewCellIsReportedButPasses) {
  SweepResult result = TinyResult();
  std::string baseline = BaselineFrom(result, R"("default_tolerance":0.0,)");
  SweepResult grown = result;
  CellResult extra;
  extra.cell.app = "FFT";
  extra.cell.threads = 2;
  extra.ok = true;
  extra.metrics.emplace_back("t_numa", 1.0);
  grown.cells.push_back(extra);
  BaselineComparison cmp = CompareAgainstBaseline(grown, baseline);
  EXPECT_FALSE(cmp.HasRegression()) << RenderComparison(cmp);
  EXPECT_EQ(cmp.new_cells, 1);
}

TEST(SweepBaseline, NanMismatchIsARegressionAndNanMatchPasses) {
  SweepResult result = TinyResult();
  std::string baseline = BaselineFrom(result, R"("default_tolerance":0.0,)");

  // ParMult's alpha is NaN on both sides: passes (covered by IdenticalResultPasses).
  // Force a defined metric to NaN: regression.
  SweepResult broken = result;
  for (auto& [name, value] : broken.cells[0].metrics) {
    if (name == "t_numa") {
      value = std::nan("");
    }
  }
  BaselineComparison cmp = CompareAgainstBaseline(broken, baseline);
  EXPECT_TRUE(cmp.HasRegression());
  bool saw_nan = false;
  for (const BaselineIssue& issue : cmp.issues) {
    saw_nan = saw_nan || issue.detail.find("NaN") != std::string::npos;
  }
  EXPECT_TRUE(saw_nan);

  // And the reverse: baseline has null where the result now has a number.
  BaselineComparison reverse = CompareAgainstBaseline(result, SerializeSweep(broken, true));
  EXPECT_TRUE(reverse.HasRegression());
}

TEST(SweepBaseline, UnparseableBaselineFailsClosed) {
  SweepResult result = TinyResult();
  BaselineComparison cmp = CompareAgainstBaseline(result, "not json at all");
  EXPECT_FALSE(cmp.loaded);
  EXPECT_TRUE(cmp.HasRegression());
  BaselineComparison missing = CompareAgainstBaselineFile(result, "/nonexistent/file.json");
  EXPECT_FALSE(missing.loaded);
  EXPECT_TRUE(missing.HasRegression());
}

// --- golden file -------------------------------------------------------------------

// The committed smoke baseline must stay schema-valid and must gate the metrics the
// engine actually emits: every baseline metric name appears in a freshly produced
// smoke cell's metric set, and exact-metric tolerances are present for the
// deterministic protocol counters.
TEST(SweepGolden, CommittedSmokeBaselineIsValidAndComplete) {
  std::ifstream in(std::string(ACE_BASELINE_DIR) + "/BENCH_smoke.json");
  ASSERT_TRUE(in) << "bench/baselines/BENCH_smoke.json missing";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();

  std::string error;
  ASSERT_TRUE(ValidateSweepJson(json, &error)) << error;

  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.StringOr("suite", ""), "smoke");
  ASSERT_NE(doc.Find("tolerances"), nullptr);
  ASSERT_NE(doc.Find("tolerance_notes"), nullptr);
  const JsonValue* tolerances = doc.Find("tolerances");
  EXPECT_EQ(tolerances->NumberOr("pages_pinned", -1.0), 0.0)
      << "protocol counters are deterministic and must be gated exactly";

  // The baseline's cell set must be exactly the current smoke suite's.
  Suite suite = MakeSuite("smoke");
  std::set<std::string> expected;
  for (const SweepCell& cell : suite.cells) {
    expected.insert(cell.Key());
  }
  std::set<std::string> in_baseline;
  for (const JsonValue& cell : doc.Find("cells")->items) {
    in_baseline.insert(cell.StringOr("key", ""));
  }
  EXPECT_EQ(expected, in_baseline)
      << "smoke suite and its baseline diverged; regenerate with "
         "ace_bench --suite smoke --out bench/baselines/BENCH_smoke.json "
         "(keep the tolerance members)";
}

TEST(SweepRender, TablesRenderFromSweepResults) {
  SweepResult result = TinyResult();
  std::string table3 = RenderTable3(result);
  EXPECT_NE(table3.find("IMatMult"), std::string::npos);
  EXPECT_NE(table3.find("Gfetch"), std::string::npos);
  std::string threshold = RenderThresholdTable(result);
  EXPECT_NE(threshold.find("inf"), std::string::npos);
  std::string gl = RenderGlTable(result);
  EXPECT_NE(gl.find("Gfetch"), std::string::npos);
  // Table 4 needs apps this tiny matrix lacks only partially: IMatMult is present.
  std::string table4 = RenderTable4(result);
  EXPECT_NE(table4.find("IMatMult"), std::string::npos);
}

}  // namespace
}  // namespace ace
