// Unit tests for src/vm: page pool (lazy free), VM objects, tasks, fault handler.
//
// The pool/object/task tests use a fake pmap that records calls; the fault-handler
// tests run against the real ACE pmap layer through a Machine.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/machine/machine.h"
#include "src/vm/fault.h"
#include "src/vm/page_pool.h"
#include "src/vm/pmap.h"
#include "src/vm/task.h"
#include "src/vm/vm_object.h"

namespace ace {
namespace {

// Records pmap traffic; FreePage/FreePageSync implement the lazy-tag contract.
class FakePmap : public PmapSystem {
 public:
  PmapHandle CreatePmap() override { return next_handle_++; }
  void DestroyPmap(PmapHandle) override { destroys_++; }
  void Enter(PmapHandle, VirtPage vpage, LogicalPage lp, Protection max_prot,
             Protection min_prot, ProcId proc) override {
    enters_.push_back({vpage, lp, max_prot, min_prot, proc});
  }
  void Protect(PmapHandle, VirtPage, VirtPage, Protection) override { protects_++; }
  void Remove(PmapHandle, VirtPage first, VirtPage last) override {
    removes_.push_back({first, last});
  }
  void RemoveAll(LogicalPage) override {}
  FreeTag FreePage(LogicalPage lp) override {
    FreeTag tag = next_tag_++;
    pending_[tag] = lp;
    return tag;
  }
  void FreePageSync(FreeTag tag) override {
    ASSERT_TRUE(pending_.count(tag)) << "sync of unknown tag";
    synced_.push_back(pending_[tag]);
    pending_.erase(tag);
  }
  void ZeroPage(LogicalPage lp) override { zeroed_.push_back(lp); }
  void CopyPage(LogicalPage, LogicalPage) override {}
  void AdvisePlacement(LogicalPage lp, PlacementPragma pragma) override {
    advised_.push_back({lp, pragma});
  }

  struct EnterCall {
    VirtPage vpage;
    LogicalPage lp;
    Protection max_prot;
    Protection min_prot;
    ProcId proc;
  };

  PmapHandle next_handle_ = 1;
  FreeTag next_tag_ = 1;
  int destroys_ = 0;
  int protects_ = 0;
  std::vector<EnterCall> enters_;
  std::vector<std::pair<VirtPage, VirtPage>> removes_;
  std::map<FreeTag, LogicalPage> pending_;
  std::vector<LogicalPage> synced_;
  std::vector<LogicalPage> zeroed_;
  std::vector<std::pair<LogicalPage, PlacementPragma>> advised_;
};

TEST(PagePool, AllocatesAllPagesThenFails) {
  FakePmap pmap;
  PagePool pool(3, &pmap);
  EXPECT_EQ(pool.Alloc(), 0u);
  EXPECT_EQ(pool.Alloc(), 1u);
  EXPECT_EQ(pool.Alloc(), 2u);
  EXPECT_EQ(pool.Alloc(), kNoLogicalPage);
}

TEST(PagePool, FreeIsLazyUntilReallocation) {
  FakePmap pmap;
  PagePool pool(1, &pmap);
  LogicalPage lp = pool.Alloc();
  pool.Free(lp);
  // Cleanup has been *started* (tag issued) but not completed.
  EXPECT_EQ(pmap.pending_.size(), 1u);
  EXPECT_TRUE(pmap.synced_.empty());
  // Reallocation forces the sync.
  EXPECT_EQ(pool.Alloc(), lp);
  EXPECT_EQ(pmap.synced_, std::vector<LogicalPage>{lp});
}

TEST(PagePool, DrainCompletesAllPending) {
  FakePmap pmap;
  PagePool pool(4, &pmap);
  LogicalPage a = pool.Alloc();
  LogicalPage b = pool.Alloc();
  pool.Free(a);
  pool.Free(b);
  pool.Drain();
  EXPECT_EQ(pmap.synced_.size(), 2u);
  EXPECT_EQ(pool.FreeCount(), 4u);
}

TEST(PagePool, FreeCountIncludesDeferred) {
  FakePmap pmap;
  PagePool pool(2, &pmap);
  LogicalPage a = pool.Alloc();
  EXPECT_EQ(pool.FreeCount(), 1u);
  pool.Free(a);
  EXPECT_EQ(pool.FreeCount(), 2u);
}

TEST(VmObject, MaterializesLazilyAndZeroFills) {
  FakePmap pmap;
  PagePool pool(4, &pmap);
  VmObject object("obj", 3);
  EXPECT_EQ(object.PageAt(1), kNoLogicalPage);
  LogicalPage lp = object.GetOrCreatePage(1, pool, pmap);
  EXPECT_NE(lp, kNoLogicalPage);
  EXPECT_EQ(pmap.zeroed_, std::vector<LogicalPage>{lp});
  // Second touch returns the same page without another zero-fill.
  EXPECT_EQ(object.GetOrCreatePage(1, pool, pmap), lp);
  EXPECT_EQ(pmap.zeroed_.size(), 1u);
  EXPECT_EQ(object.PageAt(1), lp);
}

TEST(VmObject, ReturnsNoPageWhenPoolExhausted) {
  FakePmap pmap;
  PagePool pool(1, &pmap);
  VmObject object("obj", 2);
  EXPECT_NE(object.GetOrCreatePage(0, pool, pmap), kNoLogicalPage);
  EXPECT_EQ(object.GetOrCreatePage(1, pool, pmap), kNoLogicalPage);
}

TEST(VmObject, ReleasePagesReturnsToPool) {
  FakePmap pmap;
  PagePool pool(2, &pmap);
  VmObject object("obj", 2);
  object.GetOrCreatePage(0, pool, pmap);
  object.GetOrCreatePage(1, pool, pmap);
  EXPECT_EQ(pool.FreeCount(), 0u);
  object.ReleasePages(pool);
  EXPECT_EQ(pool.FreeCount(), 2u);
  EXPECT_EQ(object.PageAt(0), kNoLogicalPage);
}

TEST(Task, MapAnonymousRoundsToPagesAndSeparatesRegions) {
  FakePmap pmap;
  Task task("t", &pmap, 4096);
  VirtAddr a = task.MapAnonymous("a", 100);        // rounds to 1 page
  VirtAddr b = task.MapAnonymous("b", 8192);       // 2 pages
  EXPECT_EQ(a % 4096, 0u);
  // Guard page between regions: b starts at least 2 pages after a.
  EXPECT_GE(b, a + 2 * 4096);
  const Region* ra = task.FindRegion(a);
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->size, 4096u);
  EXPECT_EQ(ra->label, "a");
  // The guard page belongs to no region.
  EXPECT_EQ(task.FindRegion(a + 4096), nullptr);
  const Region* rb = task.FindRegion(b + 8191);
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(rb->label, "b");
  EXPECT_EQ(task.FindRegion(b + 8192), nullptr);
}

TEST(Task, VaBaseSeparatesTasks) {
  FakePmap pmap;
  Task t1("t1", &pmap, 4096, /*va_base=*/0x10000);
  Task t2("t2", &pmap, 4096, /*va_base=*/1ull << 32);
  VirtAddr a1 = t1.MapAnonymous("a", 4096);
  VirtAddr a2 = t2.MapAnonymous("a", 4096);
  EXPECT_LT(a1, 1ull << 32);
  EXPECT_GE(a2, 1ull << 32);
}

TEST(Task, UnmapRegionRemovesMappingsAndFreesPages) {
  FakePmap pmap;
  PagePool pool(8, &pmap);
  Task task("t", &pmap, 4096);
  VirtAddr a = task.MapAnonymous("a", 2 * 4096);
  const Region* region = task.FindRegion(a);
  // Materialize both pages.
  region->object->GetOrCreatePage(0, pool, pmap);
  region->object->GetOrCreatePage(1, pool, pmap);
  task.UnmapRegion(a, pool);
  EXPECT_EQ(task.FindRegion(a), nullptr);
  ASSERT_EQ(pmap.removes_.size(), 1u);
  EXPECT_EQ(pmap.removes_[0].first, a / 4096);
  EXPECT_EQ(pmap.removes_[0].second, a / 4096 + 1);
  EXPECT_EQ(pool.FreeCount(), 8u);  // pages back (deferred counts as free)
}

TEST(Task, RegionCarriesPragmaAndMaxProt) {
  FakePmap pmap;
  Task task("t", &pmap, 4096);
  VirtAddr a = task.MapAnonymous("ro", 4096, Protection::kRead, PlacementPragma::kCacheable);
  const Region* r = task.FindRegion(a);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->max_prot, Protection::kRead);
  EXPECT_EQ(r->pragma, PlacementPragma::kCacheable);
}

// --- fault handler against the real stack -----------------------------------------

Machine::Options TinyMachine() {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 4;
  mo.config.local_pages_per_proc = 4;
  return mo;
}

TEST(FaultHandler, BadAddressOutsideRegions) {
  Machine m(TinyMachine());
  Task* task = m.CreateTask("t");
  std::uint32_t value = 0;
  EXPECT_EQ(m.TryAccess(*task, 0, 0x4, AccessKind::kFetch, &value),
            AccessStatus::kBadAddress);
}

TEST(FaultHandler, GuardPageFaults) {
  Machine m(TinyMachine());
  Task* task = m.CreateTask("t");
  VirtAddr a = task->MapAnonymous("a", 4096);
  std::uint32_t value = 0;
  EXPECT_EQ(m.TryAccess(*task, 0, a + 4096, AccessKind::kFetch, &value),
            AccessStatus::kBadAddress);
}

TEST(FaultHandler, ProtectionViolationOnReadOnlyRegion) {
  Machine m(TinyMachine());
  Task* task = m.CreateTask("t");
  VirtAddr a = task->MapAnonymous("ro", 4096, Protection::kRead);
  std::uint32_t value = 1;
  EXPECT_EQ(m.TryAccess(*task, 0, a, AccessKind::kStore, &value),
            AccessStatus::kProtectionViolation);
  // Reads of the read-only region work (zero-filled).
  EXPECT_EQ(m.TryAccess(*task, 0, a, AccessKind::kFetch, &value), AccessStatus::kOk);
  EXPECT_EQ(value, 0u);
}

TEST(FaultHandler, OutOfLogicalMemory) {
  Machine m(TinyMachine());  // 4 logical pages
  Task* task = m.CreateTask("t");
  VirtAddr a = task->MapAnonymous("big", 6 * 4096);
  std::uint32_t value = 1;
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(m.TryAccess(*task, 0, a + static_cast<VirtAddr>(p) * 4096, AccessKind::kStore,
                          &value),
              AccessStatus::kOk);
  }
  EXPECT_EQ(m.TryAccess(*task, 0, a + 4ull * 4096, AccessKind::kStore, &value),
            AccessStatus::kOutOfMemory);
}

TEST(FaultHandler, ReclaimedPagesAllowNewAllocations) {
  Machine m(TinyMachine());
  Task* task = m.CreateTask("t");
  VirtAddr a = task->MapAnonymous("a", 4 * 4096);
  for (int p = 0; p < 4; ++p) {
    m.StoreWord(*task, 0, a + static_cast<VirtAddr>(p) * 4096, 9);
  }
  task->UnmapRegion(a, m.page_pool());
  VirtAddr b = task->MapAnonymous("b", 4 * 4096);
  for (int p = 0; p < 4; ++p) {
    // Reused pages must read as zero again (fresh zero-fill, not stale data).
    EXPECT_EQ(m.LoadWord(*task, 1, b + static_cast<VirtAddr>(p) * 4096), 0u);
  }
}

TEST(FaultHandler, PragmaReachesPolicy) {
  Machine m(TinyMachine());
  Task* task = m.CreateTask("t");
  VirtAddr a =
      task->MapAnonymous("nc", 4096, Protection::kReadWrite, PlacementPragma::kNoncacheable);
  m.StoreWord(*task, 0, a, 5);
  // The noncacheable pragma forces global placement from the first touch.
  EXPECT_EQ(m.PageInfoFor(*task, a).state, PageState::kGlobalWritable);
  EXPECT_EQ(m.LoadWord(*task, 1, a), 5u);
}

}  // namespace
}  // namespace ace
