// Reproduction shape tests: small-scale versions of the paper's headline claims,
// asserted as pass/fail conditions so regressions in the *results* (not just the
// mechanics) fail CI. Each test names the paper claim it guards.

#include <gtest/gtest.h>

#include "src/metrics/experiment.h"

namespace ace {
namespace {

ExperimentOptions SmallExperiment() {
  ExperimentOptions options;
  options.num_threads = 5;
  options.config.num_processors = 5;
  options.scale = 0.3;
  return options;
}

TEST(Reproduction, GfetchGammaIsFetchRatio) {
  // Table 3: Gfetch gamma = 2.27 with G/L(fetch) = 2.3 — the all-global extreme.
  ExperimentResult r = RunExperiment("Gfetch", SmallExperiment());
  ASSERT_TRUE(r.AllOk());
  EXPECT_NEAR(r.model.gamma, r.gl_ratio, 0.12);
  EXPECT_LT(r.numa.measured_alpha, 0.1);
}

TEST(Reproduction, ParMultIsInsensitiveToPlacement) {
  // Table 3: ParMult beta = 0, gamma = 1.00 — no data references to place.
  ExperimentResult r = RunExperiment("ParMult", SmallExperiment());
  ASSERT_TRUE(r.AllOk());
  EXPECT_NEAR(r.model.gamma, 1.0, 0.01);
  EXPECT_LT(r.model.beta, 0.02);
}

TEST(Reproduction, Primes1IsFullyLocal) {
  // Table 3: Primes1 alpha = 1.0, gamma = 1.00 — private stack references only.
  ExperimentResult r = RunExperiment("Primes1", SmallExperiment());
  ASSERT_TRUE(r.AllOk());
  EXPECT_GT(r.model.alpha, 0.97);
  EXPECT_NEAR(r.model.gamma, 1.0, 0.02);
  EXPECT_GT(r.numa.measured_alpha, 0.97);
}

TEST(Reproduction, AutomaticPlacementNearOptimalForWellBehavedApps) {
  // The headline: "even very simple automatic strategies can produce nearly optimal
  // page placement" — gamma ~ 1 for IMatMult/Primes2/PlyTrace.
  for (const char* name : {"IMatMult", "Primes2", "PlyTrace"}) {
    ExperimentResult r = RunExperiment(name, SmallExperiment());
    ASSERT_TRUE(r.AllOk()) << name;
    EXPECT_LT(r.model.gamma, 1.1) << name;
    EXPECT_GT(r.model.alpha, 0.85) << name;
    // And the automatic policy clearly beats all-global:
    EXPECT_LT(r.numa.user_sec, r.global.user_sec) << name;
  }
}

TEST(Reproduction, Primes3SharingIsIrreducible) {
  // Table 3: Primes3 alpha = .17, gamma = 1.30 — "heavy legitimate use of writably
  // shared memory" that no OS strategy can make local.
  ExperimentResult r = RunExperiment("Primes3", SmallExperiment());
  ASSERT_TRUE(r.AllOk());
  EXPECT_LT(r.model.alpha, 0.45);
  EXPECT_GT(r.model.gamma, 1.15);
  EXPECT_LT(r.model.gamma, 1.7);
}

TEST(Reproduction, FalseSharingFixRaisesAlpha) {
  // Section 4.2: privatizing primes2's divisor vector raised alpha 0.66 -> 1.00.
  ExperimentOptions options = SmallExperiment();
  options.variant = 1;  // shared divisors
  ExperimentResult shared = RunExperiment("Primes2", options);
  options.variant = 0;  // private copies
  ExperimentResult fixed = RunExperiment("Primes2", options);
  ASSERT_TRUE(shared.AllOk() && fixed.AllOk());
  EXPECT_GT(fixed.model.alpha, shared.model.alpha + 0.2);
  EXPECT_LT(fixed.numa.user_sec, shared.numa.user_sec);
}

TEST(Reproduction, PaddingRemovesPlyTracePins) {
  // Section 4.2: page-sized padding separates falsely shared objects.
  ExperimentOptions options = SmallExperiment();
  std::unique_ptr<App> app = CreateAppByName("PlyTrace");
  options.variant = 0;
  PlacementRun packed = RunPlacement(*app, options, PolicySpec::MoveLimit(4), 5, 5);
  options.variant = 1;
  PlacementRun padded = RunPlacement(*app, options, PolicySpec::MoveLimit(4), 5, 5);
  ASSERT_TRUE(packed.app.ok && padded.app.ok);
  EXPECT_LT(padded.pages_pinned, packed.pages_pinned);
  EXPECT_GE(padded.measured_alpha, packed.measured_alpha);
}

TEST(Reproduction, Table4OverheadShape) {
  // Table 4: page-movement overhead is largest for Primes3 and smallest for Primes1.
  ExperimentOptions options = SmallExperiment();
  auto ratio = [&](const char* name) {
    ExperimentResult r = RunExperiment(name, options);
    EXPECT_TRUE(r.AllOk()) << name;
    return (r.numa.system_sec - r.global.system_sec) / r.numa.user_sec;
  };
  double primes1 = ratio("Primes1");
  double primes2 = ratio("Primes2");
  double primes3 = ratio("Primes3");
  EXPECT_GT(primes3, primes2);
  EXPECT_GT(primes3, 5 * primes1);
  EXPECT_LT(primes1, 0.05);
}

TEST(Reproduction, MoveLimitBeatsNeverPinOnSharingHeavyApp) {
  // Section 2.3.2 rationale: without the pin threshold, writably-shared pages thrash.
  ExperimentOptions options = SmallExperiment();
  std::unique_ptr<App> app = CreateAppByName("Primes3");
  PlacementRun limited = RunPlacement(*app, options, PolicySpec::MoveLimit(4), 5, 5);
  PlacementRun never_pin = RunPlacement(*app, options, PolicySpec::MoveLimit(1 << 30), 5, 5);
  ASSERT_TRUE(limited.app.ok && never_pin.app.ok);
  EXPECT_LT(limited.user_sec * 2, never_pin.user_sec);
}

TEST(Reproduction, AffinityMattersOnNuma) {
  // Section 4.7: the migrating scheduler destroys locality.
  ExperimentOptions options = SmallExperiment();
  std::unique_ptr<App> app = CreateAppByName("Primes2");
  options.scheduler = SchedulerKind::kAffinity;
  PlacementRun affinity = RunPlacement(*app, options, PolicySpec::MoveLimit(4), 5, 5);
  options.scheduler = SchedulerKind::kMigrating;
  PlacementRun migrating = RunPlacement(*app, options, PolicySpec::MoveLimit(4), 5, 5);
  ASSERT_TRUE(affinity.app.ok && migrating.app.ok);
  EXPECT_GT(affinity.measured_alpha, migrating.measured_alpha + 0.3);
  EXPECT_LT(affinity.user_sec, migrating.user_sec);
}

TEST(Reproduction, DerivedAlphaAgreesWithCountedAlpha) {
  // Internal consistency of the measurement method: the alpha derived from times
  // (eq. 4) must track the directly counted local fraction.
  for (const char* name : {"Primes1", "Primes2", "IMatMult"}) {
    ExperimentResult r = RunExperiment(name, SmallExperiment());
    ASSERT_TRUE(r.AllOk()) << name;
    EXPECT_NEAR(r.model.alpha, r.numa.measured_alpha, 0.15) << name;
  }
}

}  // namespace
}  // namespace ace
