// Tests for the section 4.4 extension: remote references and the remote-home state.

#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "tests/machine_invariants.h"

namespace ace {
namespace {

struct Harness {
  ScriptedPolicy policy;
  std::unique_ptr<Machine> machine;
  Task* task = nullptr;
  VirtAddr va = 0;

  Harness() {
    Machine::Options mo;
    mo.config.num_processors = 3;
    mo.config.global_pages = 16;
    mo.config.local_pages_per_proc = 8;
    mo.custom_policy = &policy;
    machine = std::make_unique<Machine>(mo);
    task = machine->CreateTask("t");
    va = task->MapAnonymous("page", machine->page_size());
  }
};

TEST(RemoteHome, HomesAtRequesterFromFresh) {
  Harness h;
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 1, h.va, 42);
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(info.state, PageState::kRemoteHomed);
  EXPECT_EQ(info.owner, 1);
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHome, OtherProcessorsReferenceRemotely) {
  Harness h;
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 1, h.va, 42);
  // Processor 0 reads through a remote mapping: correct data, remote charge.
  TimeNs before = h.machine->clocks().user_ns(0);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 42u);
  EXPECT_EQ(h.machine->clocks().user_ns(0) - before,
            h.machine->config().latency.remote_fetch_ns);
  EXPECT_EQ(h.machine->stats().refs[0].fetch_remote, 1u);
  // The home references its own local memory at local speed.
  before = h.machine->clocks().user_ns(1);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 1, h.va), 42u);
  EXPECT_EQ(h.machine->clocks().user_ns(1) - before,
            h.machine->config().latency.local_fetch_ns);
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHome, RemoteWritesAreCoherent) {
  Harness h;
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 0, h.va, 1);
  h.machine->StoreWord(*h.task, 1, h.va, 2);  // remote store into home 0's memory
  h.machine->StoreWord(*h.task, 2, h.va + 4, 3);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 2u);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 1, h.va + 4), 3u);
  // The page never moved: still homed at 0.
  EXPECT_EQ(h.machine->PageInfoFor(*h.task, h.va).owner, 0);
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHome, LocalWritablePageKeepsItsHomeWhenHomed) {
  Harness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 2, h.va, 7);  // LW on node 2
  h.policy.next = Placement::kRemoteHome;
  (void)h.machine->LoadWord(*h.task, 0, h.va);  // request from node 0
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(info.state, PageState::kRemoteHomed);
  EXPECT_EQ(info.owner, 2);  // data stayed where it was
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 7u);
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHome, GlobalPageMovesToHome) {
  Harness h;
  h.policy.next = Placement::kGlobal;
  h.machine->StoreWord(*h.task, 1, h.va, 9);
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 0, h.va + 4, 10);
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(info.state, PageState::kRemoteHomed);
  EXPECT_EQ(info.owner, 0);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va), 9u);  // content moved intact
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHome, TransitionBackToGlobal) {
  Harness h;
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 1, h.va, 11);
  h.policy.next = Placement::kGlobal;
  LogicalPage lp = h.machine->DebugLogicalPage(*h.task, h.va);
  h.machine->pmap().RemoveAll(lp);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va), 11u);
  EXPECT_EQ(h.machine->PageInfoFor(*h.task, h.va).state, PageState::kGlobalWritable);
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHome, TransitionBackToLocalMigrates) {
  Harness h;
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 1, h.va, 12);
  h.policy.next = Placement::kLocal;
  LogicalPage lp = h.machine->DebugLogicalPage(*h.task, h.va);
  h.machine->pmap().RemoveAll(lp);
  h.machine->StoreWord(*h.task, 2, h.va + 4, 13);  // write request from node 2
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(info.state, PageState::kLocalWritable);
  EXPECT_EQ(info.owner, 2);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va), 12u);
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHome, HomeReclaimsAsLocalWritable) {
  Harness h;
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 1, h.va, 14);
  h.policy.next = Placement::kLocal;
  LogicalPage lp = h.machine->DebugLogicalPage(*h.task, h.va);
  h.machine->pmap().RemoveAll(lp);
  h.machine->StoreWord(*h.task, 1, h.va, 15);  // the home itself writes
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(info.state, PageState::kLocalWritable);
  EXPECT_EQ(info.owner, 1);
  CheckMachineInvariants(*h.machine);
}

TEST(RemoteHomePolicy, HomesAfterThreshold) {
  Machine::Options mo;
  mo.config.num_processors = 3;
  mo.policy = PolicySpec::RemoteHome(2);
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", m.page_size());
  // Ping-pong to use up the moves, then the page gets homed (not pinned global).
  for (int i = 0; i < 8; ++i) {
    m.StoreWord(*t, i % 2, va, static_cast<std::uint32_t>(i));
  }
  const NumaPageInfo& info = m.PageInfoFor(*t, va);
  EXPECT_EQ(info.state, PageState::kRemoteHomed);
  EXPECT_EQ(m.LoadWord(*t, 2, va), 7u);
  CheckMachineInvariants(m);
}

TEST(RemoteHomePolicy, LopsidedSharingFavoursTheHome) {
  // The section 4.4 rationale: "remote references may be appropriate for data used
  // frequently by one processor and infrequently by others".
  auto run = [](PolicySpec spec) {
    Machine::Options mo;
    mo.config.num_processors = 2;
    mo.policy = spec;
    Machine m(mo);
    Task* t = m.CreateTask("t");
    VirtAddr va = t->MapAnonymous("p", m.page_size());
    // Warm-up sharing so both policies give up on pure-local placement.
    for (int i = 0; i < 10; ++i) {
      m.StoreWord(*t, i % 2, va, 1);
    }
    // Lopsided phase: processor 0 does 90% of the references.
    for (int i = 0; i < 1000; ++i) {
      ProcId proc = (i % 10 == 9) ? 1 : 0;
      m.StoreWord(*t, proc, va, static_cast<std::uint32_t>(i));
    }
    return m.clocks().TotalUser();
  };
  TimeNs pinned_global = run(PolicySpec::MoveLimit(4));
  TimeNs homed_remote = run(PolicySpec::RemoteHome(4));
  EXPECT_LT(homed_remote, pinned_global);
}

TEST(RemoteHome, WorksWithCoherenceStress) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.config.global_pages = 32;
  mo.config.local_pages_per_proc = 16;
  mo.policy = PolicySpec::RemoteHome(2);
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr base = t->MapAnonymous("data", 8 * m.page_size());
  std::vector<std::uint32_t> reference(8 * 1024, 0);
  std::uint64_t state = 12345;
  for (int op = 0; op < 3000; ++op) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    ProcId proc = static_cast<ProcId>(state % 4);
    std::uint32_t word = static_cast<std::uint32_t>((state >> 8) % (8 * 1024));
    VirtAddr va = base + static_cast<VirtAddr>(word) * 4;
    if (state % 3 == 0) {
      std::uint32_t value = static_cast<std::uint32_t>(state >> 32);
      m.StoreWord(*t, proc, va, value);
      reference[word] = value;
    } else {
      ASSERT_EQ(m.LoadWord(*t, proc, va), reference[word]) << "op " << op;
    }
  }
  CheckMachineInvariants(m);
}

}  // namespace
}  // namespace ace
