// Tests for the run-resilience layer: the hung-run watchdog (src/threads/watchdog),
// retry/quarantine/fork isolation in the sweep runner, checkpoint/resume
// (src/metrics/sweep/checkpoint) with its byte-identity guarantee, and the
// crash-tolerant serialization forms they share.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/metrics/sweep/cell.h"
#include "src/metrics/sweep/checkpoint.h"
#include "src/metrics/sweep/report.h"
#include "src/metrics/sweep/runner.h"
#include "src/obs/json_lite.h"
#include "src/threads/watchdog.h"

namespace ace {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "ace-resilience-XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  const char* got = mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return got != nullptr ? got : "";
}

SweepCell NormalCell(const std::string& app) {
  SweepCell cell;
  cell.app = app;
  cell.threads = 3;
  cell.scale = 0.1;
  return cell;
}

SweepCell FixtureCell(const std::string& app) {
  SweepCell cell = NormalCell(app);
  cell.mode = CellMode::kNumaOnly;  // one placement is plenty for a fixture
  return cell;
}

// --- watchdog ------------------------------------------------------------------------

// A cell whose virtual time exceeds the deadline is killed and reported as a death,
// not a crash: the kill unwinds the fiber stacks and surfaces as failure_kind.
TEST(Watchdog, DeadlineKillsRunawayCell) {
  WatchdogLimits limits;
  limits.deadline_ns = 1000;  // 1us of virtual time: any real cell exceeds this
  CellResult result = RunCell(FixtureCell("IMatMult"), MachineConfig{}, limits);
  EXPECT_TRUE(result.died());
  EXPECT_EQ(result.failure_kind, "watchdog-deadline");
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.metrics.empty());
  EXPECT_NE(result.failure_detail.find("deadline"), std::string::npos)
      << result.failure_detail;
}

// The paper's section 2.3.2 pathology: with pinning disabled (mt=inf), a page
// written by every thread ping-pongs forever. The livelock detector must kill the
// run once ownership_moves + page_syncs exceed the budget, and — because the
// watchdog arms event tracing — the kill report must name the ping-pong page.
TEST(Watchdog, LivelockDetectedKilledAndReported) {
  SweepCell cell = FixtureCell("PingPongForever");
  cell.move_threshold = kInfMoveThreshold;  // never pin: unbounded ping-pong
  WatchdogLimits limits;
  limits.move_budget = 5000;
  CellResult result = RunCell(cell, MachineConfig{}, limits);
  ASSERT_TRUE(result.died()) << "livelocked cell was not killed";
  EXPECT_EQ(result.failure_kind, "watchdog-livelock");
  EXPECT_NE(result.failure_detail.find("ping-pong suspect"), std::string::npos)
      << result.failure_detail;
  // The report ends with the last trace events, oldest first.
  EXPECT_NE(result.failure_detail.find("lp="), std::string::npos) << result.failure_detail;
}

// Generous limits must not perturb the result: the watchdog's per-dispatch checks
// and the tracing it arms are observation-only, so the cell bytes stay identical to
// an unwatched run.
TEST(Watchdog, GenerousLimitsDoNotChangeResults) {
  SweepCell cell = NormalCell("IMatMult");
  CellResult bare = RunCell(cell, MachineConfig{});
  WatchdogLimits generous;
  generous.deadline_ns = 1'000'000'000'000;  // 1000 virtual seconds
  generous.move_budget = 1'000'000'000;
  CellResult watched = RunCell(cell, MachineConfig{}, generous);
  EXPECT_EQ(SerializeCellObject(bare), SerializeCellObject(watched));
}

TEST(Watchdog, ScaledWatchdogScalesDeadlineOnly) {
  WatchdogLimits base;
  base.deadline_ns = 1'000'000;
  base.move_budget = 777;
  SweepCell half = NormalCell("IMatMult");
  half.scale = 0.5;
  WatchdogLimits scaled = ScaledWatchdog(base, half);
  EXPECT_EQ(scaled.deadline_ns, 500'000);
  EXPECT_EQ(scaled.move_budget, 777u);  // per-run, unscaled

  SweepCell tiny = half;
  tiny.scale = 0.001;  // floor at 0.05: a tiny cell still gets a real budget
  EXPECT_EQ(ScaledWatchdog(base, tiny).deadline_ns, 50'000);

  WatchdogLimits off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(ScaledWatchdog(off, half).deadline_ns, 0);
}

// --- deaths, retries, quarantine ------------------------------------------------------

TEST(Resilience, EscapedExceptionBecomesDeath) {
  CellResult result = RunCell(FixtureCell("ThrowOnRun"), MachineConfig{});
  ASSERT_TRUE(result.died());
  EXPECT_EQ(result.failure_kind, "exception");
  EXPECT_NE(result.failure_detail.find("deliberate"), std::string::npos)
      << result.failure_detail;
}

TEST(Resilience, ForkedAbortIsConfinedToTheChild) {
  // AbortOnRun trips ACE_CHECK mid-run: without isolation that SIGABRT would kill
  // the whole process; forked it becomes a reported signal death.
  CellResult result = RunCellForked(FixtureCell("AbortOnRun"), MachineConfig{});
  ASSERT_TRUE(result.died());
  EXPECT_EQ(result.failure_kind, "signal:6");
  EXPECT_NE(result.failure_detail.find("signal 6"), std::string::npos)
      << result.failure_detail;
}

// Satellite 4's regression: a cell that throws mid-run in a parallel sweep must not
// leak its worker slot or corrupt sibling cells' thread-local runtime state — every
// sibling's bytes must match a sweep that never contained the poison cell.
TEST(Resilience, DyingCellDoesNotCorruptSiblings) {
  std::vector<SweepCell> normal = {NormalCell("IMatMult"), NormalCell("Gfetch"),
                                   NormalCell("ParMult")};
  SweepCell degraded = FixtureCell("IMatMult");
  degraded.fault_plan = "frame-alloc@nth:1";  // survivable: graceful-degradation path

  std::vector<SweepCell> poisoned = normal;
  poisoned.push_back(FixtureCell("ThrowOnRun"));
  poisoned.push_back(degraded);

  SweepOptions clean_options;
  clean_options.workers = 1;
  SweepResult clean = RunSweep("tiny", normal, clean_options);

  SweepOptions options;
  options.workers = 8;
  SweepResult result = RunSweep("tiny", poisoned, options);

  ASSERT_EQ(result.cells.size(), 5u);
  for (std::size_t i = 0; i < normal.size(); ++i) {
    EXPECT_EQ(SerializeCellObject(result.cells[i]), SerializeCellObject(clean.cells[i]))
        << "sibling " << normal[i].Key() << " corrupted by a dying cell";
  }
  EXPECT_EQ(result.cells[3].failure_kind, "exception");
  // The injected frame-alloc miss degrades gracefully: the cell completes and verifies.
  EXPECT_TRUE(result.cells[4].ok) << result.cells[4].detail;
  EXPECT_FALSE(result.cells[4].died());
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].key, poisoned[3].Key());
}

TEST(Resilience, DeterministicDeathExhaustsRetryBudget) {
  SweepOptions options;
  options.workers = 1;
  options.resilience.max_attempts = 3;
  SweepResult result = RunSweep("tiny", {FixtureCell("ThrowOnRun")}, options);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].died());
  EXPECT_EQ(result.cells[0].attempts, 3);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].kind, "exception");
  EXPECT_EQ(result.failures[0].attempts, 3);
}

TEST(Resilience, FailFastSkipsCellsNotYetStarted) {
  std::vector<SweepCell> cells;
  for (int threads = 2; threads <= 5; ++threads) {
    SweepCell cell = FixtureCell("ThrowOnRun");
    cell.threads = threads;  // distinct keys
    cells.push_back(cell);
  }
  SweepOptions options;
  options.workers = 1;  // sequential: exactly one cell executes before the flag trips
  options.resilience.fail_fast = true;
  SweepResult result = RunSweep("tiny", cells, options);
  int executed = 0;
  int skipped = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.failure_kind == "exception") {
      ++executed;
    } else if (cell.failure_kind == "skipped-fail-fast") {
      ++skipped;
    }
  }
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(skipped, 3);
}

// --- serialization round trips --------------------------------------------------------

TEST(Report, CellObjectRoundTripsThroughParse) {
  // A surviving cell with a NaN metric and a fault plan.
  CellResult cell;
  cell.cell = NormalCell("FFT");
  cell.cell.fault_plan = "copy-fail@nth:2";
  cell.cell.fault_seed = 9;
  cell.ok = true;
  cell.metrics.emplace_back("t_numa", 1.25);
  cell.metrics.emplace_back("alpha", std::nan(""));
  cell.metrics.emplace_back("precise", 0.1234567890123456789);

  std::string bytes = SerializeCellObject(cell);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(bytes, &doc, &error)) << error;
  CellResult reparsed;
  ASSERT_TRUE(ParseCellObject(doc, &reparsed, &error)) << error;
  EXPECT_EQ(SerializeCellObject(reparsed), bytes);
  EXPECT_TRUE(std::isnan(reparsed.MetricOr("alpha", 0.0)));
  EXPECT_EQ(reparsed.cell.fault_plan, "copy-fail@nth:2");
  EXPECT_EQ(reparsed.cell.fault_seed, 9u);

  // A dead cell: failure object present, metrics empty.
  CellResult dead;
  dead.cell = NormalCell("IMatMult");
  dead.ok = false;
  dead.failure_kind = "watchdog-livelock";
  dead.failure_detail = "report with\nnewlines and \"quotes\"";
  std::string dead_bytes = SerializeCellObject(dead);
  ASSERT_TRUE(ParseJson(dead_bytes, &doc, &error)) << error;
  CellResult dead_reparsed;
  ASSERT_TRUE(ParseCellObject(doc, &dead_reparsed, &error)) << error;
  EXPECT_EQ(SerializeCellObject(dead_reparsed), dead_bytes);
  EXPECT_EQ(dead_reparsed.failure_kind, "watchdog-livelock");
  EXPECT_EQ(dead_reparsed.failure_detail, dead.failure_detail);
}

TEST(Report, ParseCellObjectRejectsEditedKeys) {
  CellResult cell;
  cell.cell = NormalCell("FFT");
  cell.ok = true;
  cell.metrics.emplace_back("t_numa", 1.0);
  std::string bytes = SerializeCellObject(cell);
  // Tamper with one parameter but not the stored key: the cross-check must reject.
  std::string tampered = bytes;
  std::size_t at = tampered.find("\"threads\":3");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 11, "\"threads\":4");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(tampered, &doc, &error)) << error;
  CellResult out;
  EXPECT_FALSE(ParseCellObject(doc, &out, &error));
  EXPECT_NE(error.find("does not match"), std::string::npos) << error;
}

// --- checkpoint/resume ----------------------------------------------------------------

// The acceptance property: interrupt-anywhere + resume produces byte-identical
// results. Journal a subset of a sweep's cells, reload them, resume the sweep with
// the rest executing live — the serialized result must equal the uninterrupted run's.
TEST(Checkpoint, ResumedSweepIsByteIdenticalToUninterrupted) {
  std::vector<SweepCell> cells = {NormalCell("IMatMult"), NormalCell("Gfetch"),
                                  NormalCell("ParMult")};
  SweepOptions options;
  options.workers = 2;
  SweepResult reference = RunSweep("tiny", cells, options);
  std::string reference_bytes = SerializeSweep(reference, /*include_host=*/false);

  std::string dir = MakeTempDir();
  SweepCheckpoint checkpoint;
  std::string error;
  ASSERT_TRUE(checkpoint.Open(dir, "tiny", options.base_config, &error)) << error;
  // Journal only the first two cells — as if the run was killed before the third.
  ASSERT_TRUE(checkpoint.RecordCell(reference.cells[0], &error)) << error;
  ASSERT_TRUE(checkpoint.RecordCell(reference.cells[1], &error)) << error;

  std::map<std::string, CellResult> completed;
  ASSERT_TRUE(checkpoint.LoadCompleted(&completed, &error)) << error;
  EXPECT_EQ(completed.size(), 2u);

  SweepOptions resumed_options = options;
  resumed_options.resumed = &completed;
  SweepResult resumed = RunSweep("tiny", cells, resumed_options);
  EXPECT_EQ(SerializeSweep(resumed, /*include_host=*/false), reference_bytes);
  EXPECT_TRUE(resumed.cells[0].from_checkpoint);
  EXPECT_TRUE(resumed.cells[1].from_checkpoint);
  EXPECT_FALSE(resumed.cells[2].from_checkpoint);
}

TEST(Checkpoint, DeadCellsRoundTripThroughFragments) {
  std::string dir = MakeTempDir();
  SweepCheckpoint checkpoint;
  std::string error;
  ASSERT_TRUE(checkpoint.Open(dir, "tiny", MachineConfig{}, &error)) << error;

  CellResult dead = RunCell(FixtureCell("ThrowOnRun"), MachineConfig{});
  ASSERT_TRUE(dead.died());
  ASSERT_TRUE(checkpoint.RecordCell(dead, &error)) << error;

  std::map<std::string, CellResult> completed;
  ASSERT_TRUE(checkpoint.LoadCompleted(&completed, &error)) << error;
  ASSERT_EQ(completed.size(), 1u);
  const CellResult& reloaded = completed.begin()->second;
  EXPECT_EQ(reloaded.failure_kind, "exception");
  EXPECT_EQ(SerializeCellObject(reloaded), SerializeCellObject(dead));
}

TEST(Checkpoint, FailsClosedOnCorruptFragments) {
  std::string dir = MakeTempDir();
  SweepCheckpoint checkpoint;
  std::string error;
  ASSERT_TRUE(checkpoint.Open(dir, "tiny", MachineConfig{}, &error)) << error;

  // Truncated garbage under a fragment name: resume must refuse, naming the file.
  std::string bad = dir + "/" + SweepCheckpoint::FragmentFileName("bogus");
  std::ofstream(bad) << "{\"schema\":\"ace-bench-v1\",";
  std::map<std::string, CellResult> completed;
  EXPECT_FALSE(checkpoint.LoadCompleted(&completed, &error));
  EXPECT_NE(error.find(bad), std::string::npos) << error;
  ASSERT_EQ(std::remove(bad.c_str()), 0);

  // Leftover .tmp files from an interrupted atomic write are not fragments: ignored.
  std::ofstream(bad + ".tmp") << "torn garbage";
  completed.clear();
  EXPECT_TRUE(checkpoint.LoadCompleted(&completed, &error)) << error;
  EXPECT_TRUE(completed.empty());
}

TEST(Checkpoint, FailsClosedOnSuiteAndMachineMismatch) {
  std::string dir = MakeTempDir();
  std::string error;
  SweepCheckpoint writer;
  ASSERT_TRUE(writer.Open(dir, "tiny", MachineConfig{}, &error)) << error;
  CellResult cell = RunCell(NormalCell("IMatMult"), MachineConfig{});
  ASSERT_TRUE(writer.RecordCell(cell, &error)) << error;

  // Same directory, different suite: the fragment must be rejected, not merged.
  SweepCheckpoint wrong_suite;
  ASSERT_TRUE(wrong_suite.Open(dir, "other", MachineConfig{}, &error)) << error;
  std::map<std::string, CellResult> completed;
  EXPECT_FALSE(wrong_suite.LoadCompleted(&completed, &error));
  EXPECT_NE(error.find("suite"), std::string::npos) << error;

  // Same suite, different machine shape: results would be incomparable.
  MachineConfig other_machine;
  other_machine.global_pages = MachineConfig{}.global_pages * 2;
  SweepCheckpoint wrong_machine;
  ASSERT_TRUE(wrong_machine.Open(dir, "tiny", other_machine, &error)) << error;
  completed.clear();
  EXPECT_FALSE(wrong_machine.LoadCompleted(&completed, &error));
  EXPECT_NE(error.find("machine"), std::string::npos) << error;
}

// --- failures.json --------------------------------------------------------------------

TEST(FailuresJson, SerializesValidReplayableDocument) {
  std::vector<CellFailure> failures;
  CellFailure f;
  f.key = "FFT/t3/s0.1/mt4/gl0";
  f.kind = "watchdog-livelock";
  f.detail = "ping-pong suspect: lp=7";
  f.attempts = 3;
  f.replay = "ace_bench --suite smoke --only 'FFT/t3/s0.1/mt4/gl0'";
  failures.push_back(f);

  std::string json = SerializeFailures("smoke", failures);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.StringOr("schema", ""), kFailuresSchemaName);
  EXPECT_EQ(doc.StringOr("suite", ""), "smoke");
  ASSERT_NE(doc.Find("failures"), nullptr);
  ASSERT_EQ(doc.Find("failures")->items.size(), 1u);
  const JsonValue& entry = doc.Find("failures")->items[0];
  EXPECT_EQ(entry.StringOr("kind", ""), "watchdog-livelock");
  EXPECT_EQ(entry.NumberOr("attempts", 0), 3.0);
  EXPECT_EQ(entry.StringOr("replay", ""), f.replay);

  // An empty quarantine still writes a valid document (CI uploads it unconditionally).
  std::string empty = SerializeFailures("smoke", {});
  ASSERT_TRUE(ParseJson(empty, &doc, &error)) << error;
  EXPECT_TRUE(doc.Find("failures")->items.empty());

  std::string path = MakeTempDir() + "/failures.json";
  ASSERT_TRUE(WriteFailuresJson("smoke", failures, path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
}

}  // namespace
}  // namespace ace
