// Hardening tests for src/obs/json_lite: the parser reads untrusted bytes (committed
// baselines, checkpoint fragments, forked-child pipe payloads), so truncated,
// garbage, and adversarial input must fail closed with a source-position diagnostic
// — never crash, hang, or silently accept.

#include <gtest/gtest.h>

#include <string>

#include "src/obs/json_lite.h"

namespace ace {
namespace {

bool Parses(const std::string& text, std::string* error = nullptr) {
  JsonValue doc;
  std::string local;
  return ParseJson(text, &doc, error != nullptr ? error : &local);
}

// --- the corpus -----------------------------------------------------------------------

// Mid-token EOF at every interesting cut point: each prefix of a valid document that
// is not itself a valid document must be rejected with a diagnostic.
TEST(JsonLite, RejectsTruncatedInput) {
  const char* kTruncated[] = {
      "",            // empty input
      "{",           // object never opened a key
      "{\"a\"",      // key without ':'
      "{\"a\":",     // ':' without value
      "{\"a\":1",    // value without '}'
      "{\"a\":1,",   // ',' promising a member that never comes
      "[",           // unterminated array
      "[1,2",        // array cut after an element
      "[1,",         // array cut after ','
      "\"abc",       // unterminated string
      "\"ab\\",      // string cut inside an escape
      "\"ab\\u00",   // string cut inside a \u escape
      "tru",         // literal cut short
      "fals",        //
      "nul",         //
      "-",           // sign without digits
      "1e",          // exponent without digits
  };
  for (const char* text : kTruncated) {
    std::string error;
    EXPECT_FALSE(Parses(text, &error)) << "accepted truncated input: '" << text << "'";
    EXPECT_NE(error.find("at byte"), std::string::npos)
        << "'" << text << "': diagnostic lacks a byte offset: " << error;
  }
}

TEST(JsonLite, RejectsGarbage) {
  const char* kGarbage[] = {
      "xyz",            // bare identifier
      "{a:1}",          // unquoted key
      "{\"a\" 1}",      // missing ':'
      "{\"a\":1 \"b\":2}",  // missing ','
      "[1 2]",          // missing ',' in array
      "{\"a\":1}}",     // trailing character
      "[1,2],",         // trailing comma after document
      "{,}",            // leading comma
      "[,]",            //
      "\"a\\q\"",       // unknown escape
      "0x10",           // no hex
      "1.2.3",          // malformed number
      "\x01",           // control garbage
  };
  for (const char* text : kGarbage) {
    std::string error;
    EXPECT_FALSE(Parses(text, &error)) << "accepted garbage: '" << text << "'";
    EXPECT_FALSE(error.empty()) << text;
  }
}

// Deep nesting is an error, not a stack overflow: `[[[[...` from a hostile or
// corrupt file must be rejected at the depth limit.
TEST(JsonLite, RejectsNestingBeyondLimit) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) {
    deep += '[';
  }
  std::string error;
  EXPECT_FALSE(Parses(deep, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;

  // Mixed object/array nesting hits the same guard.
  std::string mixed;
  for (int i = 0; i < 5000; ++i) {
    mixed += "{\"a\":[";
  }
  EXPECT_FALSE(Parses(mixed, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;
}

TEST(JsonLite, AcceptsNestingWithinLimit) {
  std::string doc;
  for (int i = 0; i < 150; ++i) {
    doc += '[';
  }
  doc += "1";
  for (int i = 0; i < 150; ++i) {
    doc += ']';
  }
  EXPECT_TRUE(Parses(doc));
}

// --- diagnostics ----------------------------------------------------------------------

TEST(JsonLite, ErrorsCarryLineAndColumn) {
  // The violation sits on line 3: a bare identifier where a value belongs.
  std::string error;
  EXPECT_FALSE(Parses("{\n\"a\": 1,\n\"b\": oops\n}", &error));
  EXPECT_NE(error.find("(line 3, column "), std::string::npos) << error;
  EXPECT_NE(error.find("at byte"), std::string::npos) << error;

  // Single-line input reports line 1 with the column matching the byte offset + 1.
  EXPECT_FALSE(Parses("[1, oops]", &error));
  EXPECT_NE(error.find("at byte 4 (line 1, column 5)"), std::string::npos) << error;
}

// --- the happy path stays intact ------------------------------------------------------

// Reusing one JsonValue across ParseJson calls must not accumulate state from the
// previous document (regression: members/items used to append).
TEST(JsonLite, ReusedOutputValueIsReset) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson("{\"a\":1,\"b\":[1,2,3]}", &doc, &error)) << error;
  EXPECT_EQ(doc.members.size(), 2u);
  ASSERT_TRUE(ParseJson("{\"c\":2}", &doc, &error)) << error;
  EXPECT_EQ(doc.members.size(), 1u);
  EXPECT_EQ(doc.Find("a"), nullptr);
  ASSERT_TRUE(ParseJson("null", &doc, &error)) << error;
  EXPECT_EQ(doc.kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(doc.members.empty());
}

TEST(JsonLite, StillParsesWellFormedDocuments) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(
      "{\"s\":\"a\\n\\\"b\\\"\",\"n\":-1.5e3,\"t\":true,\"f\":false,\"z\":null,"
      "\"arr\":[1,2,3],\"obj\":{\"k\":0}}  ",
      &doc, &error))
      << error;
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.StringOr("s", ""), "a\n\"b\"");
  EXPECT_DOUBLE_EQ(doc.NumberOr("n", 0), -1500.0);
  ASSERT_NE(doc.Find("arr"), nullptr);
  EXPECT_EQ(doc.Find("arr")->items.size(), 3u);
  EXPECT_EQ(doc.Find("z")->kind, JsonValue::Kind::kNull);
}

}  // namespace
}  // namespace ace
