// Software-TLB unit and invalidation tests (src/machine/tlb.h).
//
// Three layers of guarantee are frozen here:
//   1. Cache mechanics — hit/miss/fill/conflict-eviction counting on the
//      direct-mapped per-processor array.
//   2. Shootdown completeness — every PageState transition the NUMA protocol can
//      perform (ownership move, page sync, replication invalidate, protection
//      change, CoW shadow break, pageout round-trip, task teardown, pool reclaim)
//      must leave no stale entry behind. Each scenario drives the transition through
//      the real machine and then inspects the TLB directly with Peek().
//   3. Poison mode — with the shootdown sink deliberately detached, the next access
//      through a stale entry must die on ACE_CHECK (stale-entry detection), proving
//      the verify cross-check would catch any future protocol path that bypasses the
//      MMU mutators.

#include <gtest/gtest.h>

#include <memory>

#include "src/machine/machine.h"
#include "src/obs/snapshot.h"
#include "tests/machine_invariants.h"

namespace ace {
namespace {

Machine::Options SmallMachine(int procs = 3, std::uint32_t tlb_entries = 1024) {
  Machine::Options mo;
  mo.config.num_processors = procs;
  mo.config.global_pages = 32;
  mo.config.local_pages_per_proc = 16;
  mo.config.tlb_entries = tlb_entries;
  return mo;
}

VirtPage PageOf(const Machine& m, VirtAddr va) { return va / m.page_size(); }

// --- cache mechanics ---------------------------------------------------------------

TEST(TlbCache, MissFillThenHit) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());

  ASSERT_TRUE(m.tlb_enabled());
  (void)m.LoadWord(*t, 0, va);  // cold: miss, fault, fill
  const TlbStats& s = m.tlb_stats();
  EXPECT_GE(s.misses, 1u);
  EXPECT_GE(s.fills, 1u);
  std::uint64_t hits_before = s.hits;
  (void)m.LoadWord(*t, 0, va + 4);  // same page: pure hit
  (void)m.LoadWord(*t, 0, va + 8);
  EXPECT_EQ(m.tlb_stats().hits, hits_before + 2);
}

TEST(TlbCache, ReadOnlyEntryMissesOnStoreThenUpgrades) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  (void)m.LoadWord(*t, 1, va);  // read-only replica on proc 1

  std::uint64_t misses_before = m.tlb_stats().misses;
  m.StoreWord(*t, 1, va, 42);  // write needs an upgrade: protection miss
  EXPECT_GT(m.tlb_stats().misses, misses_before);
  EXPECT_EQ(m.LoadWord(*t, 1, va), 42u);
}

TEST(TlbCache, ConflictingPagesEvictEachOther) {
  // 4 entries per processor: pages p and p+4 share a slot.
  Machine m(SmallMachine(/*procs=*/2, /*tlb_entries=*/4));
  Task* t = m.CreateTask("t");
  VirtAddr region = t->MapAnonymous("pages", 8 * m.page_size());
  VirtAddr a = region;
  VirtAddr b = region + 4 * m.page_size();
  ASSERT_EQ(PageOf(m, a) % 4, PageOf(m, b) % 4);

  (void)m.LoadWord(*t, 0, a);
  std::uint64_t evictions_before = m.tlb_stats().conflict_evictions;
  (void)m.LoadWord(*t, 0, b);  // displaces a's entry
  EXPECT_EQ(m.tlb_stats().conflict_evictions, evictions_before + 1);
  EXPECT_EQ(m.tlb().Peek(0, PageOf(m, a)), nullptr);
  EXPECT_NE(m.tlb().Peek(0, PageOf(m, b)), nullptr);
}

TEST(TlbCache, PerProcessorEntriesAreIndependent) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  (void)m.LoadWord(*t, 0, va);
  (void)m.LoadWord(*t, 1, va);
  EXPECT_NE(m.tlb().Peek(0, PageOf(m, va)), nullptr);
  EXPECT_NE(m.tlb().Peek(1, PageOf(m, va)), nullptr);
  EXPECT_EQ(m.tlb().Peek(2, PageOf(m, va)), nullptr);
}

// --- batched run-length accounting --------------------------------------------------

TEST(TlbBatching, RunsCommitExactPerReferenceTotals) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());

  for (int i = 0; i < 64; ++i) {
    (void)m.LoadWord(*t, 0, va + static_cast<VirtAddr>(4 * (i % 16)));
  }
  // stats() flushes any open run before returning.
  const MachineStats& s = m.stats();
  EXPECT_EQ(s.refs[0].fetch_local + s.refs[0].fetch_global + s.refs[0].fetch_remote, 64u);
  EXPECT_GT(m.tlb_stats().batched_refs, 0u);
  EXPECT_GT(m.tlb_stats().run_flushes, 0u);
  CheckMachineInvariants(m);
}

TEST(TlbBatching, ComputeFlushesTheOpenRun) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  (void)m.LoadWord(*t, 0, va);
  std::uint64_t batched_before = m.tlb_stats().batched_refs;
  (void)m.LoadWord(*t, 0, va + 4);  // likely opens a run (first ref was slow-path)
  m.Compute(0, 1000);               // must commit it before charging compute time
  EXPECT_GE(m.tlb_stats().batched_refs, batched_before + 1);
}

// --- shootdown on every protocol transition -----------------------------------------

TEST(TlbShootdown, OwnershipMoveInvalidatesOldOwner) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  m.StoreWord(*t, 0, va, 7);  // proc 0 owns local-writable
  ASSERT_NE(m.tlb().Peek(0, PageOf(m, va)), nullptr);

  m.StoreWord(*t, 1, va, 8);  // sync + flush + move to proc 1
  EXPECT_EQ(m.tlb().Peek(0, PageOf(m, va)), nullptr);
  EXPECT_EQ(m.LoadWord(*t, 0, va), 8u);  // refault resolves the new location
  CheckMachineInvariants(m);
}

TEST(TlbShootdown, WriteInvalidatesEveryReadReplica) {
  Machine m(SmallMachine(/*procs=*/4));
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  m.StoreWord(*t, 0, va, 7);
  for (ProcId p = 1; p < 4; ++p) {
    (void)m.LoadWord(*t, p, va);  // replicate everywhere
  }
  m.StoreWord(*t, 2, va, 9);  // invalidates all other copies
  for (ProcId p = 0; p < 4; ++p) {
    if (p != 2) {
      EXPECT_EQ(m.tlb().Peek(p, PageOf(m, va)), nullptr) << "proc " << p;
    }
  }
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(m.LoadWord(*t, p, va), 9u);
  }
  CheckMachineInvariants(m);
}

TEST(TlbShootdown, CowShadowBreakInvalidatesReaders) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr original = t->MapAnonymous("orig", m.page_size());
  m.StoreWord(*t, 0, original, 100);
  const Region* r = t->FindRegion(original);
  VirtAddr copy = t->MapCopy("copy", r->object, 0, m.page_size());

  (void)m.LoadWord(*t, 1, copy);  // reads share the backing page
  m.StoreWord(*t, 1, copy, 999);  // CoW break: private shadow page
  // Whatever entries the break touched, every subsequent access must see the new
  // world: the copy reads 999 everywhere, the original still reads 100.
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(m.LoadWord(*t, p, copy), 999u);
    EXPECT_EQ(m.LoadWord(*t, p, original), 100u);
  }
  CheckMachineInvariants(m);
}

TEST(TlbShootdown, PageoutRoundTripInvalidatesAndRefills) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 4;
  mo.config.local_pages_per_proc = 4;
  mo.enable_pager = true;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr region = t->MapAnonymous("big", 8 * m.page_size());
  for (int p = 0; p < 8; ++p) {
    m.StoreWord(*t, 0, region + static_cast<VirtAddr>(p) * m.page_size(),
                static_cast<std::uint32_t>(p + 100));
  }
  ASSERT_GT(m.pager()->stats().pageouts, 0u);
  // Evicted pages' translations are gone; the round trip pages content back in.
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(m.LoadWord(*t, 0, region + static_cast<VirtAddr>(p) * m.page_size()),
              static_cast<std::uint32_t>(p + 100));
  }
  EXPECT_GT(m.tlb_stats().shootdown_pages, 0u);
  CheckMachineInvariants(m);
}

// --- frame-free paths (audit: teardown, unmap, reclaim) -----------------------------

TEST(TlbShootdown, TaskTeardownLeavesNoStaleEntries) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", 2 * m.page_size());
  m.StoreWord(*t, 0, va, 7);
  (void)m.LoadWord(*t, 1, va + m.page_size());
  VirtPage p0 = PageOf(m, va);
  VirtPage p1 = PageOf(m, va + m.page_size());
  ASSERT_NE(m.tlb().Peek(0, p0), nullptr);

  m.DestroyTask(t);  // VmObject teardown frees every frame
  EXPECT_EQ(m.tlb().Peek(0, p0), nullptr);
  EXPECT_EQ(m.tlb().Peek(1, p1), nullptr);
}

TEST(TlbShootdown, UnmapRegionLeavesNoStaleEntries) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr keep = t->MapAnonymous("keep", m.page_size());
  VirtAddr gone = t->MapAnonymous("gone", m.page_size());
  m.StoreWord(*t, 0, keep, 1);
  m.StoreWord(*t, 0, gone, 2);
  ASSERT_NE(m.tlb().Peek(0, PageOf(m, gone)), nullptr);

  t->UnmapRegion(gone, m.page_pool());
  EXPECT_EQ(m.tlb().Peek(0, PageOf(m, gone)), nullptr);
  EXPECT_EQ(m.LoadWord(*t, 0, keep), 1u);  // unrelated entry survives
  CheckMachineInvariants(m);
}

TEST(TlbShootdown, CountersSurfaceInTheTlbGroup) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  m.StoreWord(*t, 0, va, 7);
  m.StoreWord(*t, 1, va, 8);
  const TlbStats& s = m.tlb_stats();
  EXPECT_GT(s.shootdown_pages, 0u);
  // The obs formatting helper renders the group without touching machine state.
  std::string line = FormatTlbCounters(s.hits, s.misses, s.fills, s.conflict_evictions,
                                       s.shootdown_pages, s.shootdown_hits,
                                       s.run_flushes, s.batched_refs);
  EXPECT_NE(line.find("shootdown-pages="), std::string::npos);
}

// --- disabled mode -----------------------------------------------------------------

TEST(TlbDisabled, OptionsDisableMeansNoFillsAndIdenticalValues) {
  Machine::Options mo = SmallMachine();
  mo.enable_tlb = false;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  m.StoreWord(*t, 0, va, 7);
  EXPECT_EQ(m.LoadWord(*t, 1, va), 7u);
  EXPECT_FALSE(m.tlb_enabled());
  EXPECT_EQ(m.tlb_stats().fills, 0u);
  EXPECT_EQ(m.tlb_stats().hits, 0u);
}

// --- poison mode: stale entries must be caught --------------------------------------

TEST(TlbDeath, StaleEntryAfterDetachedSinkTripsVerify) {
  Machine::Options mo = SmallMachine();
  mo.tlb_verify = 1;  // force the poison cross-check on regardless of build flags
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("page", m.page_size());
  m.StoreWord(*t, 0, va, 7);  // proc 0 caches its local-writable translation
  ASSERT_TRUE(m.tlb_verify_enabled());
  ASSERT_NE(m.tlb().Peek(0, PageOf(m, va)), nullptr);

  // Simulate a protocol path that bypasses the MMU mutators: detach the sink, then
  // force an ownership move. Proc 0's entry is now stale, and the next hit through
  // it must die on the verify ACE_CHECK instead of silently using the old frame.
  m.pmap().mmus().set_shootdown_sink(nullptr);
  m.StoreWord(*t, 1, va, 8);
  ASSERT_NE(m.tlb().Peek(0, PageOf(m, va)), nullptr) << "entry should be stale";
  EXPECT_DEATH((void)m.LoadWord(*t, 0, va), "poisoned TLB entry");
}

}  // namespace
}  // namespace ace
