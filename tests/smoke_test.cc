// End-to-end smoke tests: machine + VM + NUMA + runtime basics.

#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "src/threads/runtime.h"
#include "src/threads/sim_span.h"
#include "src/threads/sync.h"

namespace ace {
namespace {

Machine::Options SmallMachine(int procs = 4) {
  Machine::Options o;
  o.config.num_processors = procs;
  o.config.global_pages = 256;
  o.config.local_pages_per_proc = 64;
  return o;
}

TEST(Smoke, SingleProcReadWrite) {
  Machine m(SmallMachine(1));
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("data", 4096);
  m.StoreWord(*t, 0, va, 0xdeadbeef);
  EXPECT_EQ(m.LoadWord(*t, 0, va), 0xdeadbeefu);
  // Zero-fill semantics: untouched words read as zero.
  EXPECT_EQ(m.LoadWord(*t, 0, va + 8), 0u);
}

TEST(Smoke, CrossProcessorVisibility) {
  Machine m(SmallMachine(4));
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("data", 4096);
  m.StoreWord(*t, 0, va, 41);
  // Another processor must observe the store through the consistency protocol.
  EXPECT_EQ(m.LoadWord(*t, 2, va), 41u);
  m.StoreWord(*t, 2, va, 42);
  EXPECT_EQ(m.LoadWord(*t, 0, va), 42u);
  EXPECT_EQ(m.LoadWord(*t, 3, va), 42u);
}

TEST(Smoke, PingPongPinsPage) {
  Machine m(SmallMachine(2));
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("data", 4096);
  // Alternate writers; after the default threshold of 4 moves the page must be pinned.
  for (int i = 0; i < 12; ++i) {
    m.StoreWord(*t, i % 2, va, static_cast<std::uint32_t>(i));
  }
  const NumaPageInfo& info = m.PageInfoFor(*t, va);
  EXPECT_EQ(info.state, PageState::kGlobalWritable);
  EXPECT_TRUE(m.move_limit_policy()->IsPinned(0) ||
              m.move_limit_policy()->MoveCount(0) >= 4 ||
              m.stats().pages_pinned > 0);
  EXPECT_GE(m.stats().ownership_moves, 4u);
}

TEST(Smoke, RuntimeParallelSum) {
  Machine m(SmallMachine(4));
  Task* t = m.CreateTask("t");
  constexpr int kN = 4096;
  VirtAddr data = t->MapAnonymous("data", kN * 4);
  VirtAddr out = t->MapAnonymous("out", 4 * 4);

  Runtime rt(&m, t);
  rt.Run(4, [&](int tid, Env& env) {
    SimSpan<std::uint32_t> a(env, data, kN);
    // Each thread fills and sums its own quarter (private pages stay local).
    std::uint32_t sum = 0;
    for (int i = tid * kN / 4; i < (tid + 1) * kN / 4; ++i) {
      a[i] = static_cast<std::uint32_t>(i);
      sum += a.Get(static_cast<std::size_t>(i));
    }
    SimSpan<std::uint32_t> o(env, out, 4);
    o[static_cast<std::size_t>(tid)] = sum;
  });

  std::uint64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    total += m.DebugRead(*t, out + static_cast<VirtAddr>(i) * 4);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
  // All four processors must have done work.
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(m.clocks().user_ns(p), 0);
  }
}

TEST(Smoke, SpinLockMutualExclusion) {
  Machine m(SmallMachine(4));
  Task* t = m.CreateTask("t");
  VirtAddr lock_va = t->MapAnonymous("lock", 4096);
  VirtAddr counter_va = t->MapAnonymous("counter", 4096);
  SpinLock lock(lock_va);

  constexpr int kIters = 200;
  Runtime rt(&m, t);
  rt.Run(4, [&](int, Env& env) {
    for (int i = 0; i < kIters; ++i) {
      lock.Acquire(env);
      // Non-atomic read-modify-write protected by the lock.
      std::uint32_t v = env.Load(counter_va);
      env.Compute(2'000);  // widen the race window
      env.Store(counter_va, v + 1);
      lock.Release(env);
    }
  });
  EXPECT_EQ(m.DebugRead(*t, counter_va), 4u * kIters);
}

TEST(Smoke, BarrierOrdersPhases) {
  Machine m(SmallMachine(4));
  Task* t = m.CreateTask("t");
  VirtAddr bar_va = t->MapAnonymous("barrier", 4096);
  VirtAddr data = t->MapAnonymous("data", 4096);
  Barrier barrier(bar_va, 4);

  Runtime rt(&m, t);
  rt.Run(4, [&](int tid, Env& env) {
    std::uint32_t sense = 0;
    SimSpan<std::uint32_t> a(env, data, 8);
    a[static_cast<std::size_t>(tid)] = static_cast<std::uint32_t>(tid + 1);
    barrier.Wait(env, &sense);
    // After the barrier every thread must see all contributions.
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      sum += a.Get(i);
    }
    a[4 + static_cast<std::size_t>(tid)] = sum;
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(m.DebugRead(*t, data + 16 + static_cast<VirtAddr>(i) * 4), 10u);
  }
}

TEST(Smoke, Determinism) {
  auto run = [] {
    Machine m(SmallMachine(4));
    Task* t = m.CreateTask("t");
    VirtAddr data = t->MapAnonymous("data", 64 * 1024);
    VirtAddr lock_va = t->MapAnonymous("lock", 4096);
    SpinLock lock(lock_va);
    Runtime rt(&m, t);
    rt.Run(4, [&](int tid, Env& env) {
      SimSpan<std::uint32_t> a(env, data, 16 * 1024);
      for (int i = 0; i < 2000; ++i) {
        std::size_t idx = static_cast<std::size_t>((i * 97 + tid * 31) % (16 * 1024));
        if (i % 5 == 0) {
          lock.Acquire(env);
          a[idx] = a.Get(idx) + 1;
          lock.Release(env);
        } else {
          a[idx] = static_cast<std::uint32_t>(i);
        }
      }
    });
    return std::tuple(m.clocks().TotalUser(), m.clocks().TotalSystem(),
                      m.stats().page_faults, m.stats().ownership_moves);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ace
