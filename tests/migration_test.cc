// Tests for process migration with page movement (paper section 4.7 future work).

#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "src/threads/runtime.h"
#include "src/threads/sim_span.h"
#include "tests/machine_invariants.h"

namespace ace {
namespace {

Machine::Options SmallMachine(int procs = 3) {
  Machine::Options mo;
  mo.config.num_processors = procs;
  mo.config.global_pages = 64;
  mo.config.local_pages_per_proc = 32;
  return mo;
}

TEST(MigratePages, MovesLocalWritablePages) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr a = t->MapAnonymous("a", 3 * m.page_size());
  for (int p = 0; p < 3; ++p) {
    m.StoreWord(*t, 0, a + static_cast<VirtAddr>(p) * m.page_size(),
                static_cast<std::uint32_t>(p + 7));
  }
  std::uint32_t moved = m.numa_manager().MigrateResidentPages(0, 2);
  EXPECT_EQ(moved, 3u);
  for (int p = 0; p < 3; ++p) {
    const NumaPageInfo& info =
        m.PageInfoFor(*t, a + static_cast<VirtAddr>(p) * m.page_size());
    EXPECT_EQ(info.state, PageState::kLocalWritable);
    EXPECT_EQ(info.owner, 2);
    // Content intact at the new home.
    EXPECT_EQ(m.LoadWord(*t, 2, a + static_cast<VirtAddr>(p) * m.page_size()),
              static_cast<std::uint32_t>(p + 7));
  }
  CheckMachineInvariants(m);
}

TEST(MigratePages, DoesNotCountTowardMoveLimit) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr a = t->MapAnonymous("a", m.page_size());
  m.StoreWord(*t, 0, a, 1);
  for (int i = 0; i < 10; ++i) {
    m.numa_manager().MigrateResidentPages(i % 2, (i + 1) % 2);
  }
  LogicalPage lp = m.DebugLogicalPage(*t, a);
  EXPECT_EQ(m.move_limit_policy()->MoveCount(lp), 0);
  EXPECT_FALSE(m.move_limit_policy()->IsPinned(lp));
  EXPECT_EQ(m.LoadWord(*t, 1, a), 1u);
  CheckMachineInvariants(m);
}

TEST(MigratePages, DropsOldReplicasOfReadOnlyPages) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr a = t->MapAnonymous("a", m.page_size());
  m.StoreWord(*t, 1, a, 5);
  (void)m.LoadWord(*t, 0, a);  // replicate read-only onto 0 (flushes 1's copy)
  (void)m.LoadWord(*t, 1, a);  // and back onto 1
  ASSERT_EQ(m.PageInfoFor(*t, a).state, PageState::kReadOnly);
  ASSERT_TRUE(m.PageInfoFor(*t, a).copies.Contains(0));
  m.numa_manager().MigrateResidentPages(0, 2);
  EXPECT_FALSE(m.PageInfoFor(*t, a).copies.Contains(0));
  EXPECT_EQ(m.LoadWord(*t, 2, a), 5u);
  CheckMachineInvariants(m);
}

TEST(MigratePages, LeavesOtherOwnersAlone) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr a = t->MapAnonymous("a", m.page_size());
  VirtAddr b = t->MapAnonymous("b", m.page_size());
  m.StoreWord(*t, 0, a, 1);
  m.StoreWord(*t, 1, b, 2);
  m.numa_manager().MigrateResidentPages(0, 2);
  EXPECT_EQ(m.PageInfoFor(*t, a).owner, 2);
  EXPECT_EQ(m.PageInfoFor(*t, b).owner, 1);  // untouched
  CheckMachineInvariants(m);
}

TEST(MigratePages, FallsBackWhenDestinationFull) {
  Machine::Options mo = SmallMachine(3);
  mo.config.local_pages_per_proc = 2;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr src = t->MapAnonymous("src", 4 * m.page_size());
  VirtAddr dst_fill = t->MapAnonymous("fill", 2 * m.page_size());
  // Fill processor 2's local memory completely.
  m.StoreWord(*t, 2, dst_fill, 1);
  m.StoreWord(*t, 2, dst_fill + m.page_size(), 1);
  // Processor 0 owns two pages (its local memory also holds only 2).
  m.StoreWord(*t, 0, src, 10);
  m.StoreWord(*t, 0, src + m.page_size(), 11);
  std::uint32_t moved = m.numa_manager().MigrateResidentPages(0, 2);
  EXPECT_EQ(moved, 0u);  // nowhere to put them
  // Content is safe in global frames and re-placeable.
  EXPECT_EQ(m.LoadWord(*t, 1, src), 10u);
  EXPECT_EQ(m.LoadWord(*t, 1, src + m.page_size()), 11u);
  CheckMachineInvariants(m);
}

TEST(MigratePages, PartialMoveWhenDestinationFillsMidway) {
  Machine::Options mo = SmallMachine(3);
  mo.config.local_pages_per_proc = 2;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr src = t->MapAnonymous("src", 2 * m.page_size());
  VirtAddr dst_fill = t->MapAnonymous("fill", m.page_size());
  // Processor 2 keeps one page of its own, leaving exactly one free frame.
  m.StoreWord(*t, 2, dst_fill, 1);
  m.StoreWord(*t, 0, src, 10);
  m.StoreWord(*t, 0, src + m.page_size(), 11);
  LogicalPage first = m.DebugLogicalPage(*t, src);
  LogicalPage second = m.DebugLogicalPage(*t, src + m.page_size());
  ASSERT_LT(first, second);  // migration scans logical pages in ascending order

  std::uint32_t moved = m.numa_manager().MigrateResidentPages(0, 2);
  EXPECT_EQ(moved, 1u);
  // The lower-numbered page won the last frame; the other was left read-only with its
  // content synced to its global frame.
  EXPECT_EQ(m.numa_manager().PageInfo(first).state, PageState::kLocalWritable);
  EXPECT_EQ(m.numa_manager().PageInfo(first).owner, 2);
  EXPECT_EQ(m.numa_manager().PageInfo(second).state, PageState::kReadOnly);
  EXPECT_TRUE(m.numa_manager().PageInfo(second).copies.Empty());
  EXPECT_EQ(m.LoadWord(*t, 1, src), 10u);
  EXPECT_EQ(m.LoadWord(*t, 1, src + m.page_size()), 11u);
  CheckMachineInvariants(m);
}

TEST(MigratePages, DropsZeroPendingReplicaAtOldHome) {
  Machine m(SmallMachine());
  Task* t = m.CreateTask("t");
  VirtAddr a = t->MapAnonymous("a", m.page_size());
  // A read of a fresh page leaves it read-only with a zero-filled replica and the
  // zero-fill still pending (no writable mapping was ever granted).
  ASSERT_EQ(m.LoadWord(*t, 0, a), 0u);
  const NumaPageInfo& before = m.PageInfoFor(*t, a);
  ASSERT_TRUE(before.zero_pending);
  ASSERT_TRUE(before.copies.Contains(0));

  m.numa_manager().MigrateResidentPages(0, 2);
  const NumaPageInfo& after = m.PageInfoFor(*t, a);
  EXPECT_TRUE(after.copies.Empty());
  EXPECT_TRUE(after.zero_pending);  // still lazily zero; nothing was materialized
  EXPECT_EQ(m.LoadWord(*t, 2, a), 0u);
  CheckMachineInvariants(m);
}

TEST(MigratePages, RemoteHomedPagesStayAtTheirHome) {
  Machine::Options mo = SmallMachine();
  mo.policy = PolicySpec::RemoteHome(0);  // home every page at its first toucher
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr a = t->MapAnonymous("a", m.page_size());
  m.StoreWord(*t, 0, a, 42);
  ASSERT_EQ(m.PageInfoFor(*t, a).state, PageState::kRemoteHomed);
  ASSERT_EQ(m.PageInfoFor(*t, a).owner, 0);

  // Migration moves local-writable pages only; a remote-homed page is already mapped
  // from every processor and stays at its home.
  EXPECT_EQ(m.numa_manager().MigrateResidentPages(0, 2), 0u);
  EXPECT_EQ(m.PageInfoFor(*t, a).state, PageState::kRemoteHomed);
  EXPECT_EQ(m.PageInfoFor(*t, a).owner, 0);
  EXPECT_EQ(m.LoadWord(*t, 2, a), 42u);
  CheckMachineInvariants(m);
}

TEST(EnvMigrateTo, ThreadMovesAndKeepsLocality) {
  Machine m(SmallMachine(2));
  Task* t = m.CreateTask("t");
  VirtAddr data = t->MapAnonymous("data", 4 * m.page_size());
  Runtime rt(&m, t);
  rt.Run(1, [&](int, Env& env) {
    SimSpan<std::uint32_t> a(env, data, 4 * 1024);
    for (int i = 0; i < 64; ++i) {
      a[static_cast<std::size_t>(i * 16)] = static_cast<std::uint32_t>(i);
    }
    EXPECT_EQ(env.proc(), 0);
    env.MigrateTo(1, /*move_pages=*/true);
    EXPECT_EQ(env.proc(), 1);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(a.Get(static_cast<std::size_t>(i * 16)), static_cast<std::uint32_t>(i));
    }
  });
  EXPECT_EQ(rt.migrations(), 1u);
  // After the bulk move, all post-migration reads were local.
  EXPECT_EQ(m.stats().MeasuredAlpha(), 1.0);
  CheckMachineInvariants(m);
}

TEST(EnvMigrateTo, NoopWhenAlreadyThere) {
  Machine m(SmallMachine(2));
  Task* t = m.CreateTask("t");
  Runtime rt(&m, t);
  rt.Run(1, [&](int, Env& env) {
    env.MigrateTo(0, true);
    EXPECT_EQ(env.proc(), 0);
  });
  EXPECT_EQ(rt.migrations(), 0u);
}

}  // namespace
}  // namespace ace
