// Unit tests for the reference tracer and false-sharing analysis (paper section 4.2).

#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "src/trace/ref_trace.h"

namespace ace {
namespace {

Machine::Options SmallMachine(int procs) {
  Machine::Options mo;
  mo.config.num_processors = procs;
  mo.config.global_pages = 32;
  mo.config.local_pages_per_proc = 16;
  return mo;
}

TEST(RefTracer, ClassifiesPrivatePage) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  m.StoreWord(*t, 0, va, 1);
  (void)m.LoadWord(*t, 0, va);
  EXPECT_EQ(tracer.PageClass(va / 4096), SharingClass::kPrivate);
}

TEST(RefTracer, ClassifiesReadSharedPage) {
  Machine m(SmallMachine(3));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  (void)m.LoadWord(*t, 0, va);
  (void)m.LoadWord(*t, 1, va);
  (void)m.LoadWord(*t, 2, va);
  EXPECT_EQ(tracer.PageClass(va / 4096), SharingClass::kReadShared);
}

TEST(RefTracer, ClassifiesWritablySharedPage) {
  // "writably shared if at least one processor writes it and more than one processor
  // reads or writes it" — one writer plus one reader qualifies.
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  m.StoreWord(*t, 0, va, 1);
  (void)m.LoadWord(*t, 1, va);
  EXPECT_EQ(tracer.PageClass(va / 4096), SharingClass::kWritablyShared);
}

TEST(RefTracer, UnreferencedPage) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  EXPECT_EQ(tracer.PageClass(12345), SharingClass::kUnreferenced);
}

TEST(RefTracer, ObjectLevelCounts) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  tracer.AddObject("a", va, 8);
  tracer.AddObject("b", va + 8, 8);
  m.StoreWord(*t, 0, va, 1);       // a written by 0
  (void)m.LoadWord(*t, 1, va + 8);  // b read by 1
  const auto& objects = tracer.objects();
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0].counts.Classify(), SharingClass::kPrivate);
  EXPECT_EQ(objects[1].counts.Classify(), SharingClass::kPrivate);
  EXPECT_EQ(objects[0].counts.stores, 1u);
  EXPECT_EQ(objects[1].counts.fetches, 1u);
}

TEST(RefTracer, DetectsFalseSharing) {
  // Two per-processor objects on one page: each object private, page writably shared.
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  tracer.AddObject("mine", va, 4);
  tracer.AddObject("yours", va + 4, 4);
  m.StoreWord(*t, 0, va, 1);
  m.StoreWord(*t, 1, va + 4, 2);
  auto findings = tracer.FindFalseSharing();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].object_name, "mine");
  EXPECT_EQ(findings[0].object_class, SharingClass::kPrivate);
  EXPECT_EQ(findings[1].object_name, "yours");
}

TEST(RefTracer, ReadSharedObjectOnWritablySharedPageIsFalselyShared) {
  // A replicable (read-shared) object colocated with a written one: section 4.2's
  // "separately coalesced cacheable and non-cacheable objects" case.
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  tracer.AddObject("table", va, 16);       // read by everyone
  tracer.AddObject("counter", va + 16, 4);  // written by everyone
  (void)m.LoadWord(*t, 0, va);
  (void)m.LoadWord(*t, 1, va + 4);
  m.StoreWord(*t, 0, va + 16, 1);
  m.StoreWord(*t, 1, va + 16, 2);
  auto findings = tracer.FindFalseSharing();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].object_name, "table");
  EXPECT_EQ(findings[0].object_class, SharingClass::kReadShared);
}

TEST(RefTracer, NoFalseSharingWhenObjectsSeparated) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr a = t->MapAnonymous("a", 4096);
  VirtAddr b = t->MapAnonymous("b", 4096);
  tracer.AddObject("mine", a, 4);
  tracer.AddObject("yours", b, 4);
  m.StoreWord(*t, 0, a, 1);
  m.StoreWord(*t, 1, b, 2);
  EXPECT_TRUE(tracer.FindFalseSharing().empty());
}

TEST(RefTracer, GenuinelySharedObjectIsNotFalselyShared) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  tracer.AddObject("shared", va, 4);
  m.StoreWord(*t, 0, va, 1);
  m.StoreWord(*t, 1, va, 2);
  EXPECT_TRUE(tracer.FindFalseSharing().empty());
}

TEST(RefTracer, PauseResumeExcludesPhases) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  tracer.Pause();
  m.StoreWord(*t, 0, va, 1);  // init phase, not recorded
  tracer.Resume();
  (void)m.LoadWord(*t, 0, va);
  EXPECT_EQ(tracer.total_refs(), 1u);
  EXPECT_EQ(tracer.PageClass(va / 4096), SharingClass::kPrivate);
}

TEST(RefTracer, LocalFractionTracksPlacement) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096, Protection::kReadWrite,
                                PlacementPragma::kNoncacheable);
  m.StoreWord(*t, 0, va, 1);
  (void)m.LoadWord(*t, 0, va);
  EXPECT_EQ(tracer.LocalFraction(), 0.0);  // noncacheable -> all global
}

TEST(RefTracer, ReportMentionsFindings) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", 4096);
  tracer.AddObject("mine", va, 4);
  m.StoreWord(*t, 0, va, 1);
  m.StoreWord(*t, 1, va + 64, 2);
  std::string report = tracer.Report();
  EXPECT_NE(report.find("falsely shared objects: 1"), std::string::npos);
  EXPECT_NE(report.find("mine"), std::string::npos);
}

TEST(RefTracerDeath, OverlappingObjectsRejected) {
  Machine m(SmallMachine(2));
  RefTracer tracer(&m);
  tracer.AddObject("a", 0x1000, 16);
  EXPECT_DEATH(tracer.AddObject("b", 0x1008, 16), "overlap");
}

}  // namespace
}  // namespace ace
