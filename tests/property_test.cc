// Property-based tests: randomized operation sequences checked against a flat
// reference memory model, with full machine-invariant validation.
//
// The key end-to-end property of the consistency protocol: no matter how reads and
// writes from different processors interleave, and no matter what the policy decides,
// simulated memory behaves exactly like one flat coherent memory. We run the same
// pseudo-random operation stream against the machine and against a plain host array
// and require identical results, under several policies, page sizes, and machine
// shapes; invariants are checked at multiple points.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/machine/machine.h"
#include "src/metrics/model.h"
#include "tests/machine_invariants.h"

namespace ace {
namespace {

// Deterministic xorshift PRNG (seeded per test case).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ull) {}
  std::uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  std::uint32_t Below(std::uint32_t n) { return static_cast<std::uint32_t>(Next() % n); }

 private:
  std::uint64_t state_;
};

struct PropertyCase {
  int seed;
  int procs;
  std::uint32_t page_size;
  PolicySpec::Kind policy;
  int move_threshold;
};

class CoherenceProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CoherenceProperty, MachineMatchesFlatMemory) {
  const PropertyCase& pc = GetParam();
  Machine::Options mo;
  mo.config.num_processors = pc.procs;
  mo.config.page_size = pc.page_size;
  mo.config.global_pages = 64;
  mo.config.local_pages_per_proc = 32;
  mo.policy.kind = pc.policy;
  mo.policy.move_threshold = pc.move_threshold;
  Machine m(mo);
  Task* t = m.CreateTask("t");

  constexpr std::uint32_t kWords = 4096;
  VirtAddr base = t->MapAnonymous("data", kWords * 4);
  std::vector<std::uint32_t> reference(kWords, 0);

  Rng rng(static_cast<std::uint64_t>(pc.seed));
  for (int op = 0; op < 4000; ++op) {
    ProcId proc = static_cast<ProcId>(rng.Below(static_cast<std::uint32_t>(pc.procs)));
    // Skewed distribution: some hot words (sharing), some cold ranges (private-ish).
    std::uint32_t word = rng.Below(4) == 0 ? rng.Below(16) : rng.Below(kWords);
    VirtAddr va = base + static_cast<VirtAddr>(word) * 4;
    switch (rng.Below(5)) {
      case 0:
      case 1: {
        std::uint32_t value = static_cast<std::uint32_t>(rng.Next());
        m.StoreWord(*t, proc, va, value);
        reference[word] = value;
        break;
      }
      case 2: {
        std::uint32_t old = m.FetchAdd(*t, proc, va, 7);
        ASSERT_EQ(old, reference[word]) << "op " << op;
        reference[word] += 7;
        break;
      }
      case 3: {
        std::uint32_t bits = 1u << rng.Below(32);
        std::uint32_t old = m.FetchOr(*t, proc, va, bits);
        ASSERT_EQ(old, reference[word]) << "op " << op;
        reference[word] |= bits;
        break;
      }
      default: {
        ASSERT_EQ(m.LoadWord(*t, proc, va), reference[word]) << "op " << op;
        break;
      }
    }
    if (rng.Below(997) == 0) {
      CheckMachineInvariants(m);
    }
  }
  // Final full sweep: every word must match from every processor.
  for (std::uint32_t word = 0; word < kWords; word += 17) {
    ProcId proc = static_cast<ProcId>(word % static_cast<std::uint32_t>(pc.procs));
    ASSERT_EQ(m.LoadWord(*t, proc, base + static_cast<VirtAddr>(word) * 4),
              reference[word]);
  }
  CheckMachineInvariants(m);
}

std::string PropertyCaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& pc = info.param;
  const char* policy = "";
  switch (pc.policy) {
    case PolicySpec::Kind::kMoveLimit:
      policy = "MoveLimit";
      break;
    case PolicySpec::Kind::kAllGlobal:
      policy = "AllGlobal";
      break;
    case PolicySpec::Kind::kAllLocal:
      policy = "AllLocal";
      break;
    case PolicySpec::Kind::kReconsider:
      policy = "Reconsider";
      break;
    case PolicySpec::Kind::kRemoteHome:
      policy = "RemoteHome";
      break;
  }
  return "seed" + std::to_string(pc.seed) + "_p" + std::to_string(pc.procs) + "_pg" +
         std::to_string(pc.page_size) + "_" + policy + "_th" +
         std::to_string(pc.move_threshold);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceProperty,
    ::testing::Values(
        PropertyCase{1, 2, 4096, PolicySpec::Kind::kMoveLimit, 4},
        PropertyCase{2, 4, 4096, PolicySpec::Kind::kMoveLimit, 4},
        PropertyCase{3, 8, 4096, PolicySpec::Kind::kMoveLimit, 4},
        PropertyCase{4, 4, 2048, PolicySpec::Kind::kMoveLimit, 4},
        PropertyCase{5, 4, 1024, PolicySpec::Kind::kMoveLimit, 1},
        PropertyCase{6, 4, 4096, PolicySpec::Kind::kAllGlobal, 0},
        PropertyCase{7, 4, 4096, PolicySpec::Kind::kAllLocal, 0},
        PropertyCase{8, 4, 4096, PolicySpec::Kind::kMoveLimit, 0},
        PropertyCase{9, 4, 4096, PolicySpec::Kind::kMoveLimit, 1 << 20},
        PropertyCase{10, 3, 4096, PolicySpec::Kind::kReconsider, 2},
        PropertyCase{11, 16, 4096, PolicySpec::Kind::kMoveLimit, 4},
        PropertyCase{12, 5, 512, PolicySpec::Kind::kMoveLimit, 2}),
    PropertyCaseName);

// Focused FetchOr coherence check with a denser bit-masking workload.
TEST(CoherenceExtra, FetchOrAgainstReference) {
  Machine::Options mo;
  mo.config.num_processors = 3;
  mo.config.global_pages = 16;
  mo.config.local_pages_per_proc = 8;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr base = t->MapAnonymous("data", 4096);
  std::vector<std::uint32_t> reference(64, 0);
  Rng rng(99);
  for (int op = 0; op < 500; ++op) {
    ProcId proc = static_cast<ProcId>(rng.Below(3));
    std::uint32_t word = rng.Below(64);
    std::uint32_t bits = 1u << rng.Below(32);
    std::uint32_t old = m.FetchOr(*t, proc, base + static_cast<VirtAddr>(word) * 4, bits);
    ASSERT_EQ(old, reference[word]);
    reference[word] |= bits;
  }
  for (std::uint32_t word = 0; word < 64; ++word) {
    ASSERT_EQ(m.LoadWord(*t, 0, base + static_cast<VirtAddr>(word) * 4), reference[word]);
  }
}

// Random region churn: map, touch, unmap; pool and frames must never leak.
TEST(ResourceProperty, RegionChurnNeverLeaks) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.config.global_pages = 32;
  mo.config.local_pages_per_proc = 16;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  Rng rng(7);
  std::vector<VirtAddr> live;
  for (int round = 0; round < 120; ++round) {
    if (live.size() < 4 && rng.Below(2) == 0) {
      std::uint32_t pages = 1 + rng.Below(4);
      VirtAddr va = t->MapAnonymous("r", pages * 4096ull);
      // Touch every page from a random processor.
      for (std::uint32_t p = 0; p < pages; ++p) {
        ProcId proc = static_cast<ProcId>(rng.Below(4));
        m.StoreWord(*t, proc, va + p * 4096ull, round);
      }
      live.push_back(va);
    } else if (!live.empty()) {
      std::size_t pick = rng.Below(static_cast<std::uint32_t>(live.size()));
      t->UnmapRegion(live[pick], m.page_pool());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  for (VirtAddr va : live) {
    t->UnmapRegion(va, m.page_pool());
  }
  m.page_pool().Drain();
  EXPECT_EQ(m.page_pool().FreeCount(), 32u);
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(m.physical_memory().FreeLocalFrames(p), 16u);
  }
  CheckMachineInvariants(m);
}

// Alpha two ways (paper section 3.1): the simulator can count local references
// directly (MeasuredAlpha), and it can derive alpha from run times via eq. 4 the way
// the paper had to. The two disagree only through the fetch/store mix of the local
// subset (eq. 4 weights each reference by its global-minus-local latency gap), so on
// a mixed workload they must land within a few percent of each other.
TEST(AlphaProperty, MeasuredAlphaMatchesEq4DerivedAlpha) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.config.global_pages = 64;
  mo.config.local_pages_per_proc = 32;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  // 64 pages: 4 shared pages that all processors fight over (they thrash, pin, and
  // end up global) and 15 private pages per processor (they settle local). Roughly
  // 1 access in 8 goes to the shared set, so alpha lands well inside (0.5, 1).
  constexpr std::uint32_t kWordsPerPage = 4096 / 4;
  constexpr std::uint32_t kSharedWords = 4 * kWordsPerPage;
  constexpr std::uint32_t kPrivateWords = 15 * kWordsPerPage;
  constexpr std::uint32_t kWords = kSharedWords + 4 * kPrivateWords;
  VirtAddr base = t->MapAnonymous("data", kWords * 4);
  Rng rng(17);
  for (int op = 0; op < 6000; ++op) {
    ProcId proc = static_cast<ProcId>(rng.Below(4));
    std::uint32_t word =
        rng.Below(8) == 0
            ? rng.Below(kSharedWords)
            : kSharedWords + static_cast<std::uint32_t>(proc) * kPrivateWords +
                  rng.Below(kPrivateWords);
    VirtAddr va = base + static_cast<VirtAddr>(word) * 4;
    if (rng.Below(3) == 0) {
      m.StoreWord(*t, proc, va, static_cast<std::uint32_t>(op));
    } else {
      (void)m.LoadWord(*t, proc, va);
    }
  }

  const LatencyModel lat;  // the machine ran with the default latencies
  ProcRefCounts refs = m.stats().TotalRefs();
  ASSERT_EQ(refs.RemoteTotal(), 0u);  // the paper's policy never maps remote memory
  std::uint64_t fetches = refs.fetch_local + refs.fetch_global;
  std::uint64_t stores = refs.store_local + refs.store_global;
  // The three user times of eq. 4: the run as it happened, and the same reference
  // stream re-priced as if every reference had been global / local.
  double t_numa = static_cast<double>(refs.fetch_local) * lat.local_fetch_ns +
                  static_cast<double>(refs.store_local) * lat.local_store_ns +
                  static_cast<double>(refs.fetch_global) * lat.global_fetch_ns +
                  static_cast<double>(refs.store_global) * lat.global_store_ns;
  double t_global = static_cast<double>(fetches) * lat.global_fetch_ns +
                    static_cast<double>(stores) * lat.global_store_ns;
  double t_local = static_cast<double>(fetches) * lat.local_fetch_ns +
                   static_cast<double>(stores) * lat.local_store_ns;
  double store_fraction = static_cast<double>(stores) / static_cast<double>(fetches + stores);
  ModelParams params = SolveModel(t_numa, t_global, t_local, lat.MixRatio(store_fraction));
  ASSERT_TRUE(params.alpha_defined);
  EXPECT_NEAR(params.alpha, m.stats().MeasuredAlpha(), 0.08);
  // Both agree the workload was mostly but not perfectly local.
  EXPECT_GT(params.alpha, 0.5);
  EXPECT_LT(params.alpha, 1.0);
}

// Counter identities that must hold on any fault-driven run (no frees, no explicit
// migration): the manager's global counters are redundant with per-page policy state,
// and the protocol's structure bounds how the content-movement counters can relate.
TEST(CounterProperty, CounterIdentitiesHold) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.config.global_pages = 64;
  mo.config.local_pages_per_proc = 32;
  mo.policy = PolicySpec::MoveLimit(2);  // low threshold: moves and pins both happen
  Machine m(mo);
  Task* t = m.CreateTask("t");
  constexpr std::uint32_t kWords = 4096;
  VirtAddr base = t->MapAnonymous("data", kWords * 4);
  Rng rng(23);
  for (int op = 0; op < 6000; ++op) {
    ProcId proc = static_cast<ProcId>(rng.Below(4));
    std::uint32_t word = rng.Below(4) == 0 ? rng.Below(16) : rng.Below(kWords);
    VirtAddr va = base + static_cast<VirtAddr>(word) * 4;
    if (rng.Below(3) == 0) {
      m.StoreWord(*t, proc, va, static_cast<std::uint32_t>(op));
    } else {
      (void)m.LoadWord(*t, proc, va);
    }
  }
  const MachineStats& stats = m.stats();
  ASSERT_GT(stats.ownership_moves, 0u);
  ASSERT_GT(stats.pages_pinned, 0u);

  // Every sync writes back a dirty owner copy, and an owner copy only ever came from
  // a page copy into local memory or a local zero-fill — hence the zero_fills term
  // (a freshly zero-filled page that is written and then synced was never copied).
  EXPECT_LE(stats.page_syncs, stats.page_copies + stats.zero_fills);

  // The global move counter is the sum of the policy's per-page move counts, and the
  // pin counter matches the pages the policy actually pinned (nothing was freed, so
  // no per-page state was reset underneath the totals).
  std::uint64_t per_page_moves = 0;
  std::uint64_t pinned_pages = 0;
  for (LogicalPage lp = 0; lp < m.numa_manager().num_pages(); ++lp) {
    per_page_moves += static_cast<std::uint64_t>(m.move_limit_policy()->MoveCount(lp));
    if (m.move_limit_policy()->IsPinned(lp)) {
      pinned_pages++;
    }
  }
  EXPECT_EQ(stats.ownership_moves, per_page_moves);
  EXPECT_EQ(stats.pages_pinned, pinned_pages);
  CheckMachineInvariants(m);
}

// Deterministic replay: identical seeds produce identical machines.
TEST(DeterminismProperty, IdenticalSeedsIdenticalOutcomes) {
  auto run = [](int seed) {
    Machine::Options mo;
    mo.config.num_processors = 4;
    mo.config.global_pages = 32;
    mo.config.local_pages_per_proc = 16;
    Machine m(mo);
    Task* t = m.CreateTask("t");
    VirtAddr base = t->MapAnonymous("data", 16 * 4096);
    Rng rng(static_cast<std::uint64_t>(seed));
    for (int op = 0; op < 3000; ++op) {
      ProcId proc = static_cast<ProcId>(rng.Below(4));
      VirtAddr va = base + static_cast<VirtAddr>(rng.Below(16 * 1024)) * 4;
      if (rng.Below(3) == 0) {
        m.StoreWord(*t, proc, va, static_cast<std::uint32_t>(op));
      } else {
        (void)m.LoadWord(*t, proc, va);
      }
    }
    return std::tuple(m.clocks().TotalUser(), m.clocks().TotalSystem(),
                      m.stats().page_faults, m.stats().page_copies,
                      m.stats().ownership_moves, m.stats().pages_pinned);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the stream actually matters
}

}  // namespace
}  // namespace ace
