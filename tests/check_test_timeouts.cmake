# Timeout audit: every test registered with ctest must carry an explicit TIMEOUT
# property, so a hung run fails fast instead of stalling CI until the runner's
# job limit. Run as a ctest test itself (see tests/CMakeLists.txt); it asks ctest
# for the full test list as JSON and fails naming every test without a timeout.
#
# Invoked as:
#   cmake -DCTEST_EXECUTABLE=<ctest> -DBUILD_DIR=<build dir> -P check_test_timeouts.cmake

if(CMAKE_VERSION VERSION_LESS 3.19)
  # string(JSON) appeared in 3.19; older cmake can build the project (3.16 floor)
  # but cannot run this audit. Skipping is safe: CI pins a modern cmake.
  message(STATUS "cmake ${CMAKE_VERSION} lacks string(JSON); skipping timeout audit")
  return()
endif()

execute_process(
  COMMAND "${CTEST_EXECUTABLE}" --show-only=json-v1
  WORKING_DIRECTORY "${BUILD_DIR}"
  OUTPUT_VARIABLE listing
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ctest --show-only=json-v1 failed (rc=${rc})")
endif()

string(JSON num_tests LENGTH "${listing}" "tests")
if(num_tests EQUAL 0)
  message(FATAL_ERROR "ctest reported zero tests; audit ran in the wrong directory?")
endif()

set(missing "")
math(EXPR last "${num_tests} - 1")
foreach(i RANGE ${last})
  string(JSON name GET "${listing}" tests ${i} name)
  set(has_timeout FALSE)
  string(JSON num_props ERROR_VARIABLE props_error LENGTH "${listing}" tests ${i} properties)
  if(NOT props_error AND num_props GREATER 0)
    math(EXPR props_last "${num_props} - 1")
    foreach(p RANGE ${props_last})
      string(JSON prop_name GET "${listing}" tests ${i} properties ${p} name)
      if(prop_name STREQUAL "TIMEOUT")
        string(JSON prop_value GET "${listing}" tests ${i} properties ${p} value)
        if(prop_value GREATER 0)
          set(has_timeout TRUE)
        endif()
      endif()
    endforeach()
  endif()
  if(NOT has_timeout)
    list(APPEND missing "${name}")
  endif()
endforeach()

if(missing)
  list(LENGTH missing num_missing)
  list(JOIN missing "\n  " joined)
  message(FATAL_ERROR
    "${num_missing} test(s) registered without an explicit TIMEOUT property:\n"
    "  ${joined}\n"
    "Add TIMEOUT via set_tests_properties (or register through ace_test).")
endif()

message(STATUS "timeout audit: all ${num_tests} tests carry an explicit TIMEOUT")
