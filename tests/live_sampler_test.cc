// Live-telemetry tests (src/obs/sampler, src/obs/live_feed, the runtime hook).
//
// The two load-bearing guarantees:
//   * golden sum-of-deltas — a sampled run's ace-live-v1 segment validates, and the
//     summary's cumulative totals equal the machine's actual end-of-run counters
//     exactly (with and without the software TLB), so the per-interval deltas are a
//     lossless decomposition of the final counters;
//   * determinism — sampling is a pure observer: a sampled run's application result,
//     virtual clocks, and every MachineStats/TLB counter are identical to an
//     unsampled run's, and a whole sweep cell serializes to identical bytes.
// The rest pins the validator's contract (monotone timestamps, non-negative deltas,
// summary equality, torn-tail and open-segment tolerance), trace-ring drop
// visibility in the feed, and the watchdog's livelock budget reading the sample
// stream.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/machine/machine.h"
#include "src/metrics/sweep/cell.h"
#include "src/metrics/sweep/report.h"
#include "src/metrics/sweep/runner.h"
#include "src/obs/json_lite.h"
#include "src/obs/live_feed.h"
#include "src/obs/live_stream.h"
#include "src/obs/sampler.h"
#include "src/obs/snapshot.h"
#include "src/threads/watchdog.h"

namespace ace {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

struct SampledRun {
  AppResult app;
  MachineStats stats;
  TlbStats tlb;
  TimeNs user_ns = 0;
  TimeNs system_ns = 0;
  std::uint64_t trace_emitted = 0;
  std::uint64_t trace_dropped = 0;
  std::string feed;  // whole feed text; empty for unsampled runs
  std::uint64_t samples = 0;
};

// One app run on a fresh machine, optionally streamed through a LiveSampler into a
// temp feed file — the same wiring ace_run --live-out uses. `trace_capacity` > 0
// additionally arms event tracing with a ring that small (to force drops).
SampledRun RunApp(const char* app_name, bool tlb, bool sampled, TimeNs interval_ns,
                  std::size_t trace_capacity = 0) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.enable_tlb = tlb;
  Machine machine(mo);
  if (trace_capacity > 0) {
    EXPECT_TRUE(machine.observability().EnableTracing(trace_capacity));
  }

  AppConfig cfg;
  cfg.num_threads = 4;
  cfg.scale = 0.25;

  LiveStreamWriter writer;
  std::unique_ptr<LiveSampler> sampler;
  std::string path;
  if (sampled) {
    path = ::testing::TempDir() + "live_feed_" + app_name + (tlb ? "_tlb" : "_notlb") +
           ".jsonl";
    EXPECT_TRUE(writer.Open(path, /*append=*/false));
    LiveSampler::Options so;
    so.interval_ns = interval_ns;
    so.tool = "live_sampler_test";
    sampler = std::make_unique<LiveSampler>(so, &writer);
    machine.observability().EnableHeat();
    sampler->SetSource(&Machine::LiveCaptureThunk, &machine);
    LiveRunMeta meta;
    meta.app = app_name;
    meta.policy = "move-limit";
    meta.procs = 4;
    meta.threads = 4;
    meta.pages = mo.config.global_pages;
    meta.page_size = mo.config.page_size;
    meta.tlb = machine.tlb_enabled();
    sampler->BeginRun(std::move(meta));
    cfg.runtime.sampler = sampler.get();
  }

  SampledRun out;
  out.app = CreateAppByName(app_name)->Run(machine, cfg);
  if (sampled) {
    sampler->EndRun(out.app.ok ? "ok" : "failed");
    out.samples = sampler->total_samples();
    writer.Close();
    EXPECT_TRUE(writer.ok());
    out.feed = ReadFileOrDie(path);
  }
  out.stats = machine.stats();
  out.tlb = machine.tlb_stats();
  out.user_ns = machine.clocks().TotalUser();
  out.system_ns = machine.clocks().TotalSystem();
  out.trace_emitted = machine.observability().tracer().total_emitted();
  out.trace_dropped = machine.observability().tracer().dropped();
  return out;
}

LiveFeedState FoldFeed(const std::string& feed) {
  LiveFeedParser parser;
  std::vector<JsonValue> recs;
  EXPECT_TRUE(parser.Feed(feed, &recs)) << parser.error();
  LiveFeedState state;
  for (const JsonValue& rec : recs) {
    state.Apply(rec);
  }
  return state;
}

// --- golden sum-of-deltas ------------------------------------------------------------

void GoldenSumOfDeltas(bool tlb) {
  SampledRun run = RunApp("IMatMult", tlb, /*sampled=*/true, /*interval_ns=*/1'000'000);
  ASSERT_TRUE(run.app.ok) << run.app.detail;
  ASSERT_GT(run.samples, 1u) << "cadence never fired: the runtime hook is dead";

  // The validator proves per-segment sum-of-deltas == summary...
  LiveValidateResult v = ValidateLiveFeed(run.feed);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.segments, 1u);
  EXPECT_EQ(v.samples, run.samples);
  EXPECT_FALSE(v.torn_tail);
  EXPECT_FALSE(v.open_segment);

  // ...and this closes the loop: the summary equals the machine's actual final
  // counters, so the deltas are a lossless decomposition of the run.
  LiveFeedState state = FoldFeed(run.feed);
  ASSERT_TRUE(state.finished);
  EXPECT_EQ(state.outcome, "ok");
  const ProcRefCounts t = run.stats.TotalRefs();
  EXPECT_EQ(state.totals[kLcFetchLocal], t.fetch_local);
  EXPECT_EQ(state.totals[kLcFetchGlobal], t.fetch_global);
  EXPECT_EQ(state.totals[kLcFetchRemote], t.fetch_remote);
  EXPECT_EQ(state.totals[kLcStoreLocal], t.store_local);
  EXPECT_EQ(state.totals[kLcStoreGlobal], t.store_global);
  EXPECT_EQ(state.totals[kLcStoreRemote], t.store_remote);
  EXPECT_EQ(state.totals[kLcFaults], run.stats.page_faults);
  EXPECT_EQ(state.totals[kLcZeroFills], run.stats.zero_fills);
  EXPECT_EQ(state.totals[kLcCopies], run.stats.page_copies);
  EXPECT_EQ(state.totals[kLcSyncs], run.stats.page_syncs);
  EXPECT_EQ(state.totals[kLcFlushes], run.stats.page_flushes);
  EXPECT_EQ(state.totals[kLcUnmaps], run.stats.page_unmaps);
  EXPECT_EQ(state.totals[kLcMoves], run.stats.ownership_moves);
  EXPECT_EQ(state.totals[kLcPins], run.stats.pages_pinned);
  EXPECT_EQ(state.totals[kLcAllocFails], run.stats.local_alloc_failures);
  EXPECT_EQ(state.totals[kLcTlbHits], run.tlb.hits);
  EXPECT_EQ(state.totals[kLcTlbMisses], run.tlb.misses);
  EXPECT_EQ(state.totals[kLcUserNs], static_cast<std::uint64_t>(run.user_ns));
  EXPECT_EQ(state.totals[kLcSystemNs], static_cast<std::uint64_t>(run.system_ns));
  if (tlb) {
    EXPECT_GT(state.totals[kLcTlbHits], 0u);
  } else {
    EXPECT_EQ(state.totals[kLcTlbHits], 0u);
    EXPECT_EQ(state.totals[kLcTlbMisses], 0u);
  }
  // Heat profiling rode along: policy decisions and hot-page rows made it into the
  // feed (the numatop-style views render from these).
  EXPECT_GT(state.totals[kLcDecLocal] + state.totals[kLcDecGlobal] +
                state.totals[kLcDecRemote],
            0u);
  EXPECT_NE(run.feed.find("\"hot\":["), std::string::npos);

  // Truncating mid-summary is the crash shape: still valid, flagged as torn.
  LiveValidateResult torn = ValidateLiveFeed(run.feed.substr(0, run.feed.size() - 7));
  EXPECT_TRUE(torn.ok) << torn.error;
  EXPECT_TRUE(torn.torn_tail);
}

TEST(LiveGolden, DeltasSumToFinalCountersWithTlb) { GoldenSumOfDeltas(true); }
TEST(LiveGolden, DeltasSumToFinalCountersWithoutTlb) { GoldenSumOfDeltas(false); }

// --- determinism ---------------------------------------------------------------------

// Sampling must not perturb the simulation: same app, same config, same seed, with
// and without the sampler attached — every counter and clock identical.
TEST(LiveDeterminism, SampledRunMatchesUnsampledExactly) {
  SampledRun bare = RunApp("ParMult", /*tlb=*/true, /*sampled=*/false, 0);
  SampledRun sampled = RunApp("ParMult", /*tlb=*/true, /*sampled=*/true, 1'000'000);
  ASSERT_TRUE(bare.app.ok) << bare.app.detail;
  ASSERT_TRUE(sampled.app.ok) << sampled.app.detail;
  EXPECT_GT(sampled.samples, 0u);

  EXPECT_EQ(bare.app.detail, sampled.app.detail);
  EXPECT_EQ(bare.user_ns, sampled.user_ns);
  EXPECT_EQ(bare.system_ns, sampled.system_ns);
  const MachineStats& x = bare.stats;
  const MachineStats& y = sampled.stats;
  EXPECT_EQ(x.page_faults, y.page_faults);
  EXPECT_EQ(x.zero_fills, y.zero_fills);
  EXPECT_EQ(x.page_copies, y.page_copies);
  EXPECT_EQ(x.page_syncs, y.page_syncs);
  EXPECT_EQ(x.page_flushes, y.page_flushes);
  EXPECT_EQ(x.page_unmaps, y.page_unmaps);
  EXPECT_EQ(x.ownership_moves, y.ownership_moves);
  EXPECT_EQ(x.pages_pinned, y.pages_pinned);
  EXPECT_EQ(x.local_alloc_failures, y.local_alloc_failures);
  ASSERT_EQ(x.refs.size(), y.refs.size());
  for (std::size_t p = 0; p < x.refs.size(); ++p) {
    EXPECT_EQ(x.refs[p].fetch_local, y.refs[p].fetch_local) << "proc " << p;
    EXPECT_EQ(x.refs[p].fetch_global, y.refs[p].fetch_global) << "proc " << p;
    EXPECT_EQ(x.refs[p].fetch_remote, y.refs[p].fetch_remote) << "proc " << p;
    EXPECT_EQ(x.refs[p].store_local, y.refs[p].store_local) << "proc " << p;
    EXPECT_EQ(x.refs[p].store_global, y.refs[p].store_global) << "proc " << p;
    EXPECT_EQ(x.refs[p].store_remote, y.refs[p].store_remote) << "proc " << p;
  }
  // TLB behavior identical too. (batched_refs/run_flushes are excluded by design:
  // the sampler's heat profiling forces per-reference recording, which bypasses run
  // batching — pure bookkeeping of the fast path's batching, with every hit, miss,
  // fill, and shootdown unchanged.)
  EXPECT_EQ(bare.tlb.hits, sampled.tlb.hits);
  EXPECT_EQ(bare.tlb.misses, sampled.tlb.misses);
  EXPECT_EQ(bare.tlb.fills, sampled.tlb.fills);
  EXPECT_EQ(bare.tlb.shootdown_pages, sampled.tlb.shootdown_pages);
}

// Same guarantee one layer up: a sweep cell's serialized bytes are identical with
// and without a sampler riding along (the GenerousLimitsDoNotChangeResults pattern).
TEST(LiveDeterminism, SampledCellBytesMatchUnsampled) {
  SweepCell cell;
  cell.app = "IMatMult";
  cell.threads = 3;
  cell.scale = 0.1;
  CellResult bare = RunCell(cell, MachineConfig{});
  LiveSampler::Options so;
  so.interval_ns = 1'000'000;
  LiveSampler sampler(so, /*sink=*/nullptr);  // bare sampler: capture without a feed
  CellResult sampled = RunCell(cell, MachineConfig{}, WatchdogLimits{}, &sampler);
  EXPECT_GT(sampler.segments(), 0u);
  EXPECT_EQ(SerializeCellObject(bare), SerializeCellObject(sampled));
}

// --- validator contract --------------------------------------------------------------

std::string MetaLine() {
  return "{\"type\":\"meta\",\"format\":\"ace-live-v1\",\"version\":1,\"tool\":\"t\","
         "\"app\":\"a\",\"policy\":\"p\",\"procs\":1,\"threads\":1,\"pages\":4,"
         "\"page_size\":4096,\"seed\":0,\"fault_plan\":\"\",\"tlb\":0,"
         "\"sample_interval_ns\":1000,\"tag\":\"\"}\n";
}

using Counters = std::array<long long, kNumLiveCounters>;

std::string CounterFields(const Counters& v) {
  std::string s;
  for (int i = 0; i < kNumLiveCounters; ++i) {
    s += ",\"";
    s += LiveCounterKey(i);
    s += "\":";
    s += std::to_string(v[i]);
  }
  return s;
}

std::string SampleLine(int idx, long long ts, long long dur, const Counters& v) {
  return "{\"type\":\"sample\",\"idx\":" + std::to_string(idx) +
         ",\"ts_ns\":" + std::to_string(ts) + ",\"dur_ns\":" + std::to_string(dur) +
         CounterFields(v) +
         ",\"trace_dropped_total\":0,\"procs\":[[0,0,0,0,0,0,0,0]]}\n";
}

std::string SummaryLine(int samples, long long ts, const Counters& v) {
  return "{\"type\":\"summary\",\"samples\":" + std::to_string(samples) +
         ",\"ts_ns\":" + std::to_string(ts) + ",\"outcome\":\"ok\"" + CounterFields(v) +
         ",\"trace_dropped_total\":0,\"alpha\":0.5}\n";
}

Counters OneDelta(int counter, long long value) {
  Counters v{};
  v[static_cast<std::size_t>(counter)] = value;
  return v;
}

TEST(LiveValidator, AcceptsAWellFormedSegment) {
  std::string feed = MetaLine() + SampleLine(0, 1000, 1000, OneDelta(kLcFetchLocal, 2)) +
                     SampleLine(1, 2000, 1000, OneDelta(kLcFetchLocal, 3)) +
                     SummaryLine(2, 2000, OneDelta(kLcFetchLocal, 5));
  LiveValidateResult v = ValidateLiveFeed(feed);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.segments, 1u);
  EXPECT_EQ(v.samples, 2u);
  EXPECT_FALSE(v.torn_tail);
  EXPECT_FALSE(v.open_segment);
}

TEST(LiveValidator, RejectsTimestampRegression) {
  std::string feed = MetaLine() + SampleLine(0, 2000, 2000, OneDelta(kLcFaults, 1)) +
                     SampleLine(1, 1000, 0, OneDelta(kLcFaults, 1)) +
                     SummaryLine(2, 1000, OneDelta(kLcFaults, 2));
  EXPECT_FALSE(ValidateLiveFeed(feed).ok);
}

TEST(LiveValidator, RejectsNegativeDelta) {
  std::string feed = MetaLine() + SampleLine(0, 1000, 1000, OneDelta(kLcSyncs, -1)) +
                     SummaryLine(1, 1000, OneDelta(kLcSyncs, -1));
  EXPECT_FALSE(ValidateLiveFeed(feed).ok);
}

TEST(LiveValidator, RejectsSummaryThatDoesNotEqualTheDeltaSum) {
  std::string feed = MetaLine() + SampleLine(0, 1000, 1000, OneDelta(kLcMoves, 3)) +
                     SummaryLine(1, 1000, OneDelta(kLcMoves, 4));
  EXPECT_FALSE(ValidateLiveFeed(feed).ok);
}

TEST(LiveValidator, RejectsGarbageOnAnInteriorLine) {
  std::string feed = MetaLine() + "not json\n" +
                     SummaryLine(0, 1000, Counters{});
  EXPECT_FALSE(ValidateLiveFeed(feed).ok);
}

TEST(LiveValidator, ToleratesATornFinalLineOnly) {
  std::string good = MetaLine() + SampleLine(0, 1000, 1000, OneDelta(kLcFaults, 1)) +
                     SummaryLine(1, 1000, OneDelta(kLcFaults, 1));
  // Final line unterminated (the writer died before its newline): tolerated.
  std::string unterminated = good.substr(0, good.size() - 1);
  LiveValidateResult v1 = ValidateLiveFeed(unterminated);
  EXPECT_TRUE(v1.ok) << v1.error;
  EXPECT_TRUE(v1.torn_tail);
  // Final line cut mid-record: also tolerated.
  LiveValidateResult v2 = ValidateLiveFeed(good.substr(0, good.size() - 20));
  EXPECT_TRUE(v2.ok) << v2.error;
  EXPECT_TRUE(v2.torn_tail);
}

TEST(LiveValidator, ToleratesATrailingOpenSegment) {
  // A still-running (or killed) writer: meta + samples, summary never arrived.
  std::string feed = MetaLine() + SampleLine(0, 1000, 1000, OneDelta(kLcFaults, 1));
  LiveValidateResult v = ValidateLiveFeed(feed);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_TRUE(v.open_segment);
  EXPECT_EQ(v.segments, 0u);
}

TEST(LiveValidator, RejectsAnEmptyFeed) {
  EXPECT_FALSE(ValidateLiveFeed("").ok);
}

// --- trace-ring drop visibility ------------------------------------------------------

// With a deliberately tiny ring, drops must show up in the feed (per-sample
// cumulative counter and summary) and agree with the tracer's own count, and the
// snapshot formatter must flag the wrap.
TEST(LiveTraceRing, DropsAreVisibleInFeedAndSnapshot) {
  if (!Observability::TracingCompiledIn()) {
    GTEST_SKIP() << "ACE_TRACE compiled out";
  }
  SampledRun run = RunApp("IMatMult", /*tlb=*/false, /*sampled=*/true,
                          /*interval_ns=*/1'000'000, /*trace_capacity=*/4);
  ASSERT_TRUE(run.app.ok) << run.app.detail;
  ASSERT_GT(run.trace_dropped, 0u) << "ring never wrapped: capacity too large";

  LiveValidateResult v = ValidateLiveFeed(run.feed);
  ASSERT_TRUE(v.ok) << v.error;
  LiveFeedState state = FoldFeed(run.feed);
  EXPECT_EQ(state.totals[kLcTraceEmitted], run.trace_emitted);
  EXPECT_EQ(state.totals[kLcTraceDropped], run.trace_dropped);
  EXPECT_EQ(state.trace_dropped_total, run.trace_dropped);

  std::string s = FormatTraceRingCounters(run.trace_emitted, run.trace_dropped);
  EXPECT_NE(s.find("dropped="), std::string::npos);
  EXPECT_NE(s.find("rings wrapped"), std::string::npos);
}

// --- watchdog integration ------------------------------------------------------------

// With a sampler attached, the livelock budget is evaluated against the sample
// stream's traffic counter, and the kill report says so.
TEST(LiveWatchdog, LivelockBudgetReadsTheSampleStream) {
  SweepCell cell;
  cell.app = "PingPongForever";
  cell.threads = 3;
  cell.scale = 0.1;
  cell.mode = CellMode::kNumaOnly;
  cell.move_threshold = kInfMoveThreshold;  // never pin: unbounded ping-pong
  WatchdogLimits limits;
  limits.move_budget = 5000;
  LiveSampler::Options so;
  so.interval_ns = 1'000'000;
  LiveSampler sampler(so, /*sink=*/nullptr);
  CellResult result = RunCell(cell, MachineConfig{}, limits, &sampler);
  ASSERT_TRUE(result.died()) << "livelocked cell was not killed";
  EXPECT_EQ(result.failure_kind, "watchdog-livelock");
  EXPECT_NE(result.failure_detail.find("live sample stream"), std::string::npos)
      << result.failure_detail;
}

}  // namespace
}  // namespace ace
