// Unit tests for src/common: ProcSet, Protection helpers, core types.

#include <gtest/gtest.h>

#include "src/common/proc_set.h"
#include "src/common/protection.h"
#include "src/common/types.h"

namespace ace {
namespace {

TEST(ProcSet, StartsEmpty) {
  ProcSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.First(), kNoProc);
  EXPECT_FALSE(s.Contains(0));
}

TEST(ProcSet, AddRemoveContains) {
  ProcSet s;
  s.Add(3);
  s.Add(7);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1);
  s.Remove(3);  // idempotent
  EXPECT_EQ(s.Count(), 1);
}

TEST(ProcSet, AddIsIdempotent) {
  ProcSet s;
  s.Add(5);
  s.Add(5);
  EXPECT_EQ(s.Count(), 1);
}

TEST(ProcSet, FirstReturnsLowest) {
  ProcSet s;
  s.Add(9);
  s.Add(2);
  s.Add(15);
  EXPECT_EQ(s.First(), 2);
}

TEST(ProcSet, SingleFactory) {
  ProcSet s = ProcSet::Single(6);
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(6));
}

TEST(ProcSet, ForEachVisitsInOrder) {
  ProcSet s;
  s.Add(10);
  s.Add(1);
  s.Add(4);
  std::vector<ProcId> seen;
  s.ForEach([&](ProcId p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<ProcId>{1, 4, 10}));
}

TEST(ProcSet, ForEachAllowsRemovalOfVisited) {
  // FlushAllCopies removes members while iterating; the iteration must be safe
  // because ForEach iterates over a snapshot... it iterates the live bits copy.
  ProcSet s;
  for (ProcId p = 0; p < 8; ++p) {
    s.Add(p);
  }
  std::vector<ProcId> seen;
  s.ForEach([&](ProcId p) {
    seen.push_back(p);
    s.Remove(p);
  });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_TRUE(s.Empty());
}

TEST(ProcSet, Clear) {
  ProcSet s;
  s.Add(0);
  s.Add(15);
  s.Clear();
  EXPECT_TRUE(s.Empty());
}

TEST(ProcSet, MaxProcessorBoundary) {
  ProcSet s;
  s.Add(kMaxProcessors - 1);
  EXPECT_TRUE(s.Contains(kMaxProcessors - 1));
  EXPECT_EQ(s.First(), kMaxProcessors - 1);
}

TEST(ProcSet, Equality) {
  ProcSet a;
  ProcSet b;
  a.Add(2);
  b.Add(2);
  EXPECT_EQ(a, b);
  b.Add(3);
  EXPECT_FALSE(a == b);
}

TEST(Protection, AllowsMatrix) {
  EXPECT_FALSE(Allows(Protection::kNone, AccessKind::kFetch));
  EXPECT_FALSE(Allows(Protection::kNone, AccessKind::kStore));
  EXPECT_TRUE(Allows(Protection::kRead, AccessKind::kFetch));
  EXPECT_FALSE(Allows(Protection::kRead, AccessKind::kStore));
  EXPECT_TRUE(Allows(Protection::kReadWrite, AccessKind::kFetch));
  EXPECT_TRUE(Allows(Protection::kReadWrite, AccessKind::kStore));
}

TEST(Protection, MinProtFor) {
  EXPECT_EQ(MinProtFor(AccessKind::kFetch), Protection::kRead);
  EXPECT_EQ(MinProtFor(AccessKind::kStore), Protection::kReadWrite);
}

TEST(Protection, ProtLeqIsTotalOrder) {
  EXPECT_TRUE(ProtLeq(Protection::kNone, Protection::kRead));
  EXPECT_TRUE(ProtLeq(Protection::kRead, Protection::kReadWrite));
  EXPECT_TRUE(ProtLeq(Protection::kRead, Protection::kRead));
  EXPECT_FALSE(ProtLeq(Protection::kReadWrite, Protection::kRead));
}

TEST(Protection, Names) {
  EXPECT_STREQ(ProtName(Protection::kNone), "none");
  EXPECT_STREQ(ProtName(Protection::kRead), "read");
  EXPECT_STREQ(ProtName(Protection::kReadWrite), "read-write");
}

}  // namespace
}  // namespace ace
