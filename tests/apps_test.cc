// Integration tests for the application suite: every application must compute a
// correct, verified result under every placement policy and several thread counts —
// the paper's "correct parallel programs will run on our system without modification".

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/apps/app.h"
#include "src/apps/primes_common.h"
#include "src/machine/machine.h"

namespace ace {
namespace {

// (app name, policy, threads)
using AppCase = std::tuple<std::string, PolicySpec::Kind, int>;

class AppCorrectness : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppCorrectness, VerifiesUnderPolicy) {
  const auto& [name, policy_kind, threads] = GetParam();
  Machine::Options mo;
  mo.config.num_processors = threads;
  mo.policy.kind = policy_kind;
  mo.policy.move_threshold = 4;
  mo.policy.reconsider_after_ns = 10'000'000;
  Machine m(mo);

  std::unique_ptr<App> app = CreateAppByName(name);
  ASSERT_NE(app, nullptr);
  AppConfig cfg;
  cfg.num_threads = threads;
  cfg.scale = 0.25;  // small but non-trivial
  AppResult result = app->Run(m, cfg);
  EXPECT_TRUE(result.ok) << name << ": " << result.detail;
}

std::vector<AppCase> AllCases() {
  std::vector<AppCase> cases;
  for (const char* name : {"ParMult", "Gfetch", "IMatMult", "Primes1", "Primes2", "Primes3",
                           "FFT", "PlyTrace"}) {
    for (PolicySpec::Kind kind :
         {PolicySpec::Kind::kMoveLimit, PolicySpec::Kind::kAllGlobal,
          PolicySpec::Kind::kAllLocal, PolicySpec::Kind::kReconsider}) {
      cases.emplace_back(name, kind, 3);
    }
    cases.emplace_back(name, PolicySpec::Kind::kMoveLimit, 1);
    cases.emplace_back(name, PolicySpec::Kind::kMoveLimit, 5);
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<AppCase>& info) {
  const auto& [name, kind, threads] = info.param;
  const char* policy = "";
  switch (kind) {
    case PolicySpec::Kind::kMoveLimit:
      policy = "MoveLimit";
      break;
    case PolicySpec::Kind::kAllGlobal:
      policy = "AllGlobal";
      break;
    case PolicySpec::Kind::kAllLocal:
      policy = "AllLocal";
      break;
    case PolicySpec::Kind::kReconsider:
      policy = "Reconsider";
      break;
    case PolicySpec::Kind::kRemoteHome:
      policy = "RemoteHome";
      break;
  }
  return name + std::string("_") + policy + "_t" + std::to_string(threads);
}

INSTANTIATE_TEST_SUITE_P(Suite, AppCorrectness, ::testing::ValuesIn(AllCases()), CaseName);

// --- variants -----------------------------------------------------------------------

TEST(AppVariants, Primes2SharedDivisorsStillCorrect) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  Machine m(mo);
  std::unique_ptr<App> app = CreateAppByName("Primes2");
  AppConfig cfg;
  cfg.num_threads = 4;
  cfg.scale = 0.25;
  cfg.variant = 1;  // the "initial version" with false sharing
  AppResult result = app->Run(m, cfg);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(AppVariants, PlyTracePaddedStillCorrect) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  Machine m(mo);
  std::unique_ptr<App> app = CreateAppByName("PlyTrace");
  AppConfig cfg;
  cfg.num_threads = 4;
  cfg.scale = 0.25;
  cfg.variant = 1;  // page-padded tiles
  AppResult result = app->Run(m, cfg);
  EXPECT_TRUE(result.ok) << result.detail;
}

// --- fixed total work ------------------------------------------------------------------

TEST(AppWorkConservation, WorkUnitsIndependentOfThreadCount) {
  // The paper's method requires applications to "do about the same amount of work,
  // independent of the number of processors".
  for (const char* name : {"ParMult", "Primes1", "Primes2", "Primes3"}) {
    std::uint64_t work1 = 0;
    std::uint64_t work4 = 0;
    for (int threads : {1, 4}) {
      Machine::Options mo;
      mo.config.num_processors = threads;
      Machine m(mo);
      std::unique_ptr<App> app = CreateAppByName(name);
      AppConfig cfg;
      cfg.num_threads = threads;
      cfg.scale = 0.2;
      AppResult result = app->Run(m, cfg);
      ASSERT_TRUE(result.ok) << name;
      (threads == 1 ? work1 : work4) = result.work_units;
    }
    EXPECT_EQ(work1, work4) << name;
  }
}

// --- registry ---------------------------------------------------------------------------

TEST(AppRegistry, AllAppsPresentInTableOrder) {
  std::vector<AppFactory> factories = AllAppFactories();
  ASSERT_EQ(factories.size(), 8u);
  const char* expected[] = {"ParMult", "Gfetch",  "IMatMult", "Primes1",
                            "Primes2", "Primes3", "FFT",      "PlyTrace"};
  for (std::size_t i = 0; i < factories.size(); ++i) {
    EXPECT_STREQ(factories[i]()->name(), expected[i]);
  }
}

TEST(AppRegistry, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateAppByName("NoSuchApp"), nullptr);
}

TEST(AppRegistry, ModelGLMatchesPaperFootnote) {
  // "Gfetch and IMatMult ... used 2.3 for G/L. The other applications used G/L as 2."
  LatencyModel lat;
  EXPECT_NEAR(CreateGfetch()->ModelGL(lat), 2.31, 0.01);
  EXPECT_NEAR(CreateIMatMult()->ModelGL(lat), 2.31, 0.01);
  EXPECT_NEAR(CreatePrimes1()->ModelGL(lat), 2.0, 0.05);
  EXPECT_NEAR(CreateFft()->ModelGL(lat), 2.0, 0.05);
}

// --- host reference helpers ---------------------------------------------------------------

TEST(PrimesCommon, HostSieveKnownValues) {
  EXPECT_EQ(HostPrimeCount(10), 4u);      // 2 3 5 7
  EXPECT_EQ(HostPrimeCount(100), 25u);
  EXPECT_EQ(HostPrimeCount(10'000), 1229u);
  std::vector<std::uint32_t> primes = HostPrimesUpTo(20);
  EXPECT_EQ(primes, (std::vector<std::uint32_t>{2, 3, 5, 7, 11, 13, 17, 19}));
}

TEST(PrimesCommon, IntSqrt) {
  EXPECT_EQ(IntSqrt(0), 0u);
  EXPECT_EQ(IntSqrt(1), 1u);
  EXPECT_EQ(IntSqrt(3), 1u);
  EXPECT_EQ(IntSqrt(4), 2u);
  EXPECT_EQ(IntSqrt(40'000), 200u);
  EXPECT_EQ(IntSqrt(39'999), 199u);
}

}  // namespace
}  // namespace ace
