// Differential equivalence suite: the software-TLB fast path changes NOTHING
// observable.
//
// Every application in the paper's Table 3 suite runs under every placement policy
// twice — TLB on and TLB off — and the results must be byte-identical: virtual user
// and system times (compared as exact doubles, which for these integer-nanosecond
// sums means bit-exact), the complete MachineStats counter matrix, measured alpha,
// the derived model parameters α/β/γ, and the serialized ace-bench-v1 cell JSON.
// This is the invariant that makes the fast path safe to leave on everywhere; any
// divergence — one reference misclassified, one cost charged differently, one
// counter recorded in a different order — fails here with the field named.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/metrics/experiment.h"
#include "src/metrics/sweep/report.h"
#include "src/metrics/sweep/runner.h"

namespace ace {
namespace {

// The three placements the paper's measurement procedure uses (section 3.1).
struct NamedPolicy {
  const char* name;
  PolicySpec spec;
};

std::vector<NamedPolicy> Policies() {
  return {
      {"move-limit", PolicySpec::MoveLimit(4)},
      {"all-global", PolicySpec::AllGlobal()},
      {"all-local", PolicySpec::AllLocal()},
  };
}

ExperimentOptions SmallOptions() {
  ExperimentOptions options;
  options.num_threads = 4;
  options.config.num_processors = 4;
  options.scale = 0.25;
  return options;
}

// Field-by-field comparison with the divergent field named in the failure message.
void ExpectRunsIdentical(const PlacementRun& on, const PlacementRun& off,
                         const std::string& label) {
  EXPECT_EQ(on.app.ok, off.app.ok) << label;
  EXPECT_EQ(on.user_sec, off.user_sec) << label << " user_sec";
  EXPECT_EQ(on.system_sec, off.system_sec) << label << " system_sec";
  EXPECT_EQ(on.measured_alpha, off.measured_alpha) << label << " measured_alpha";
  EXPECT_EQ(on.pages_pinned, off.pages_pinned) << label << " pages_pinned";

  const MachineStats& a = on.stats;
  const MachineStats& b = off.stats;
  EXPECT_EQ(a.page_faults, b.page_faults) << label << " page_faults";
  EXPECT_EQ(a.zero_fills, b.zero_fills) << label << " zero_fills";
  EXPECT_EQ(a.page_copies, b.page_copies) << label << " page_copies";
  EXPECT_EQ(a.page_syncs, b.page_syncs) << label << " page_syncs";
  EXPECT_EQ(a.page_flushes, b.page_flushes) << label << " page_flushes";
  EXPECT_EQ(a.page_unmaps, b.page_unmaps) << label << " page_unmaps";
  EXPECT_EQ(a.ownership_moves, b.ownership_moves) << label << " ownership_moves";
  EXPECT_EQ(a.pages_pinned, b.pages_pinned) << label << " pages_pinned";
  EXPECT_EQ(a.local_alloc_failures, b.local_alloc_failures)
      << label << " local_alloc_failures";
  EXPECT_EQ(a.degraded_global_fallbacks, b.degraded_global_fallbacks) << label;
  EXPECT_EQ(a.degraded_copy_failures, b.degraded_copy_failures) << label;
  EXPECT_EQ(a.degraded_pool_retries, b.degraded_pool_retries) << label;
  EXPECT_EQ(a.degraded_oom_faults, b.degraded_oom_faults) << label;
  for (std::size_t p = 0; p < a.refs.size(); ++p) {
    EXPECT_EQ(a.refs[p].fetch_local, b.refs[p].fetch_local) << label << " proc " << p;
    EXPECT_EQ(a.refs[p].fetch_global, b.refs[p].fetch_global) << label << " proc " << p;
    EXPECT_EQ(a.refs[p].fetch_remote, b.refs[p].fetch_remote) << label << " proc " << p;
    EXPECT_EQ(a.refs[p].store_local, b.refs[p].store_local) << label << " proc " << p;
    EXPECT_EQ(a.refs[p].store_global, b.refs[p].store_global) << label << " proc " << p;
    EXPECT_EQ(a.refs[p].store_remote, b.refs[p].store_remote) << label << " proc " << p;
  }
}

// One app under one policy, both ways. TLB-on must actually have used the fast path
// (hits > 0) for the comparison to mean anything.
void RunDifferential(const std::string& app_name, const NamedPolicy& policy) {
  ExperimentOptions options = SmallOptions();

  std::unique_ptr<App> app_on = CreateAppByName(app_name);
  std::unique_ptr<App> app_off = CreateAppByName(app_name);
  ASSERT_NE(app_on, nullptr);

  options.enable_tlb = true;
  PlacementRun on = RunPlacement(*app_on, options, policy.spec,
                                 options.config.num_processors, options.num_threads);
  options.enable_tlb = false;
  PlacementRun off = RunPlacement(*app_off, options, policy.spec,
                                  options.config.num_processors, options.num_threads);

  std::string label = app_name + "/" + policy.name;
  EXPECT_TRUE(on.app.ok) << label;
  // The fast path must engage whenever the workload re-references pages at all
  // (ParMult under all-local makes a handful of scattered references — zero hits is
  // legitimate there, and the differential comparison below still bites).
  if (on.stats.TotalRefs().Total() >= 100) {
    EXPECT_GT(on.tlb_hits, 0u) << label << ": fast path never engaged";
  }
  EXPECT_EQ(off.tlb_hits, 0u) << label << ": TLB-off run used the TLB";
  ExpectRunsIdentical(on, off, label);
}

// --- every app x every policy -------------------------------------------------------

class TlbEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(TlbEquivalence, CountersAndTimesIdenticalUnderAllPolicies) {
  for (const NamedPolicy& policy : Policies()) {
    RunDifferential(GetParam(), policy);
  }
}

std::vector<std::string> AllAppNames() {
  std::vector<std::string> names;
  for (const AppFactory& f : AllAppFactories()) {
    names.push_back(f()->name());
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, TlbEquivalence, ::testing::ValuesIn(AllAppNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- model parameters (alpha / beta / gamma) ----------------------------------------

TEST(TlbEquivalenceModel, DerivedModelParametersIdentical) {
  for (const char* app : {"IMatMult", "Primes3"}) {
    ExperimentOptions options = SmallOptions();
    options.enable_tlb = true;
    ExperimentResult on = RunExperiment(app, options);
    options.enable_tlb = false;
    ExperimentResult off = RunExperiment(app, options);

    EXPECT_EQ(on.model.alpha_defined, off.model.alpha_defined) << app;
    if (on.model.alpha_defined) {
      EXPECT_EQ(on.model.alpha, off.model.alpha) << app;
    }
    EXPECT_EQ(on.model.beta, off.model.beta) << app;
    EXPECT_EQ(on.model.gamma, off.model.gamma) << app;
    EXPECT_EQ(on.numa.measured_alpha, off.numa.measured_alpha) << app;
    ExpectRunsIdentical(on.numa, off.numa, std::string(app) + "/numa");
    ExpectRunsIdentical(on.global, off.global, std::string(app) + "/global");
    ExpectRunsIdentical(on.local, off.local, std::string(app) + "/local");
  }
}

// --- serialized ace-bench-v1 cell JSON, via the ACE_TLB environment toggle ----------

TEST(TlbEquivalenceJson, BenchCellJsonByteIdenticalAcrossAceTlbEnv) {
  SweepCell cell;
  cell.app = "IMatMult";
  cell.threads = 4;
  cell.scale = 0.25;

  MachineConfig config;
  WatchdogLimits watchdog;

  // The environment toggle is read at Machine construction, so flipping it between
  // in-process runs exercises exactly what the soak harness and CI differ do.
  ASSERT_EQ(setenv("ACE_TLB", "1", /*overwrite=*/1), 0);
  CellResult on = RunCell(cell, config, watchdog);
  ASSERT_EQ(setenv("ACE_TLB", "0", /*overwrite=*/1), 0);
  CellResult off = RunCell(cell, config, watchdog);
  ASSERT_EQ(unsetenv("ACE_TLB"), 0);

  ASSERT_TRUE(on.ok);
  ASSERT_TRUE(off.ok);
  EXPECT_EQ(SerializeCellObject(on), SerializeCellObject(off));
}

}  // namespace
}  // namespace ace
