// Golden-counter tests: exactly which MachineStats counters each NUMA-manager
// operation increments.
//
// Each scenario drives one protocol transition through the real machine (scripted
// policy, so the placement decision is forced) and asserts the *complete* counter
// delta with DiffStats — not just the counters the transition is expected to bump,
// but that every other protocol counter stayed at zero. This freezes the counter
// semantics the observability layer (src/obs) and the paper's Table 4 overhead
// analysis both build on; an accidental double-count or a dropped increment anywhere
// in numa_manager.cc fails here with the exact field named.

#include <gtest/gtest.h>

#include <memory>

#include "src/machine/machine.h"
#include "src/obs/snapshot.h"

namespace ace {
namespace {

// Assert a full protocol-counter delta (reference counters are scenario-dependent and
// checked separately where interesting).
void ExpectDelta(const MachineStats& d, std::uint64_t faults, std::uint64_t zero_fills,
                 std::uint64_t copies, std::uint64_t syncs, std::uint64_t flushes,
                 std::uint64_t unmaps, std::uint64_t moves, std::uint64_t pins,
                 std::uint64_t alloc_fails) {
  EXPECT_EQ(d.page_faults, faults) << "page_faults";
  EXPECT_EQ(d.zero_fills, zero_fills) << "zero_fills";
  EXPECT_EQ(d.page_copies, copies) << "page_copies";
  EXPECT_EQ(d.page_syncs, syncs) << "page_syncs";
  EXPECT_EQ(d.page_flushes, flushes) << "page_flushes";
  EXPECT_EQ(d.page_unmaps, unmaps) << "page_unmaps";
  EXPECT_EQ(d.ownership_moves, moves) << "ownership_moves";
  EXPECT_EQ(d.pages_pinned, pins) << "pages_pinned";
  EXPECT_EQ(d.local_alloc_failures, alloc_fails) << "local_alloc_failures";
}

struct Harness {
  ScriptedPolicy policy;
  std::unique_ptr<Machine> machine;
  Task* task = nullptr;
  VirtAddr va = 0;

  explicit Harness(int procs = 4, std::uint32_t local_pages = 8) {
    Machine::Options mo;
    mo.config.num_processors = procs;
    mo.config.global_pages = 16;
    mo.config.local_pages_per_proc = local_pages;
    mo.custom_policy = &policy;
    machine = std::make_unique<Machine>(mo);
    task = machine->CreateTask("golden");
    va = task->MapAnonymous("page", machine->page_size());
  }

  // Run `fn` and return the counter delta it produced.
  template <typename Fn>
  MachineStats Delta(Fn&& fn) {
    MachineStats before = machine->stats();
    fn();
    return DiffStats(before, machine->stats());
  }
};

TEST(GoldenCounters, FirstLocalReadZeroFillsIntoLocalMemory) {
  Harness h;
  h.policy.next = Placement::kLocal;
  MachineStats d = h.Delta([&] { (void)h.machine->LoadWord(*h.task, 0, h.va); });
  // One fault; the lazy zero-fill lands directly in proc 0's local memory (no global
  // zero, no copy — the section 2.3.1 optimization).
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/1, /*copies=*/0, /*syncs=*/0,
              /*flushes=*/0, /*unmaps=*/0, /*moves=*/0, /*pins=*/0, /*alloc_fails=*/0);
  EXPECT_EQ(d.refs[0].fetch_local, 1u);
}

TEST(GoldenCounters, SecondReaderOfUntouchedPageZeroFillsAgainNotCopies) {
  Harness h;
  h.policy.next = Placement::kLocal;
  (void)h.machine->LoadWord(*h.task, 0, h.va);
  MachineStats d = h.Delta([&] { (void)h.machine->LoadWord(*h.task, 1, h.va); });
  // The page has never been written, so zero_pending is still set: the new replica is
  // materialized by a second local zero-fill, NOT by a page copy.
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/1, /*copies=*/0, /*syncs=*/0,
              /*flushes=*/0, /*unmaps=*/0, /*moves=*/0, /*pins=*/0, /*alloc_fails=*/0);
}

TEST(GoldenCounters, ReplicationAfterWriteCopiesFromGlobal) {
  Harness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 7);  // proc 0 owns the page local-writable
  MachineStats d = h.Delta([&] { (void)h.machine->LoadWord(*h.task, 1, h.va); });
  // Table 1 [LOCAL x Local-Writable on other node]: sync & flush the owner, copy to
  // the reader's local memory; the transfer counts as an ownership move.
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/0, /*copies=*/1, /*syncs=*/1,
              /*flushes=*/1, /*unmaps=*/0, /*moves=*/1, /*pins=*/0, /*alloc_fails=*/0);
}

TEST(GoldenCounters, FirstLocalWriteZeroFillsAndTakesOwnershipWithoutMove) {
  Harness h;
  h.policy.next = Placement::kLocal;
  MachineStats d = h.Delta([&] { h.machine->StoreWord(*h.task, 0, h.va, 7); });
  // First ownership (last_owner was none) is not a move.
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/1, /*copies=*/0, /*syncs=*/0,
              /*flushes=*/0, /*unmaps=*/0, /*moves=*/0, /*pins=*/0, /*alloc_fails=*/0);
  EXPECT_EQ(d.refs[0].store_local, 1u);
}

TEST(GoldenCounters, WriteByOtherProcessorSyncsFlushesCopiesAndMoves) {
  Harness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 7);
  MachineStats d = h.Delta([&] { h.machine->StoreWord(*h.task, 1, h.va, 8); });
  // Table 2 [LOCAL x Local-Writable on other node].
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/0, /*copies=*/1, /*syncs=*/1,
              /*flushes=*/1, /*unmaps=*/0, /*moves=*/1, /*pins=*/0, /*alloc_fails=*/0);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 1, h.va), 8u);
}

TEST(GoldenCounters, GlobalDecisionOnOwnedPageSyncsAndFlushesOwnCopy) {
  Harness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 7);
  h.policy.next = Placement::kGlobal;
  // Force the next reference back through the manager (the LW mapping would otherwise
  // keep serving proc 0 without consulting the policy).
  h.machine->pmap().RemoveAll(h.machine->DebugLogicalPage(*h.task, h.va));
  MachineStats d = h.Delta([&] { (void)h.machine->LoadWord(*h.task, 0, h.va); });
  // Table 1 [GLOBAL x Local-Writable]: sync & flush own; page becomes Global-Writable.
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/0, /*copies=*/0, /*syncs=*/1,
              /*flushes=*/1, /*unmaps=*/0, /*moves=*/0, /*pins=*/0, /*alloc_fails=*/0);
  EXPECT_EQ(h.machine->PageInfoFor(*h.task, h.va).state, PageState::kGlobalWritable);
  EXPECT_EQ(d.refs[0].fetch_global, 1u);
}

TEST(GoldenCounters, GlobalDecisionOnReplicatedPageFlushesEveryReplica) {
  Harness h;
  h.policy.next = Placement::kLocal;
  (void)h.machine->LoadWord(*h.task, 0, h.va);
  (void)h.machine->LoadWord(*h.task, 1, h.va);
  (void)h.machine->LoadWord(*h.task, 2, h.va);  // three read-only replicas
  h.policy.next = Placement::kGlobal;
  h.machine->pmap().RemoveAll(h.machine->DebugLogicalPage(*h.task, h.va));
  MachineStats d = h.Delta([&] { (void)h.machine->LoadWord(*h.task, 3, h.va); });
  // Table 1 [GLOBAL x Read-Only]: flush all three replicas; the pending zero is
  // materialized in the global frame (the page was never written).
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/1, /*copies=*/0, /*syncs=*/0,
              /*flushes=*/3, /*unmaps=*/0, /*moves=*/0, /*pins=*/0, /*alloc_fails=*/0);
}

TEST(GoldenCounters, LocalDecisionOnGlobalPageUnmapsAllAndCopies) {
  Harness h;
  h.policy.next = Placement::kGlobal;
  h.machine->StoreWord(*h.task, 0, h.va, 7);  // Global-Writable, content 7
  h.policy.next = Placement::kLocal;
  MachineStats d = h.Delta([&] { h.machine->StoreWord(*h.task, 1, h.va, 8); });
  // Table 2 [LOCAL x Global-Writable]: unmap all, copy to local, Local-Writable. Proc
  // 1's store faults because its GW mapping never existed; proc 0's is dropped by the
  // unmap. First ownership after GW is not a move (last_owner was none).
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/0, /*copies=*/1, /*syncs=*/0,
              /*flushes=*/0, /*unmaps=*/1, /*moves=*/0, /*pins=*/0, /*alloc_fails=*/0);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 1, h.va), 8u);
}

TEST(GoldenCounters, LocalMemoryFullFallsBackToGlobalAndCountsTheFailure) {
  // One local frame per processor: the second distinct page wanted LOCAL but must
  // fall back to GLOBAL.
  Harness h(/*procs=*/2, /*local_pages=*/1);
  VirtAddr va2 = h.task->MapAnonymous("page2", h.machine->page_size());
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 7);  // consumes proc 0's only local frame
  MachineStats d = h.Delta([&] { h.machine->StoreWord(*h.task, 0, va2, 8); });
  ExpectDelta(d, /*faults=*/1, /*zero_fills=*/1, /*copies=*/0, /*syncs=*/0,
              /*flushes=*/0, /*unmaps=*/0, /*moves=*/0, /*pins=*/0, /*alloc_fails=*/1);
  EXPECT_EQ(h.machine->PageInfoFor(*h.task, va2).state, PageState::kGlobalWritable);
  EXPECT_EQ(d.refs[0].store_global, 1u);
}

TEST(GoldenCounters, MoveLimitPinsAfterThresholdMoves) {
  // Real move-limit policy, threshold 1: the first ownership move pins the page.
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 16;
  mo.config.local_pages_per_proc = 8;
  mo.policy = PolicySpec::MoveLimit(1);
  Machine machine(mo);
  Task* task = machine.CreateTask("pin");
  VirtAddr va = task->MapAnonymous("page", machine.page_size());

  machine.StoreWord(*task, 0, va, 1);  // proc 0 owns (no move)
  MachineStats before = machine.stats();
  machine.StoreWord(*task, 1, va, 2);  // move #1 reaches the threshold
  machine.StoreWord(*task, 0, va, 3);  // policy now answers GLOBAL: pin materializes
  MachineStats d = DiffStats(before, machine.stats());
  EXPECT_EQ(d.ownership_moves, 1u);
  EXPECT_EQ(d.pages_pinned, 1u);
  EXPECT_EQ(machine.PageInfoFor(*task, va).state, PageState::kGlobalWritable);
}

TEST(GoldenCounters, PageoutRoundTripCountsInPagerNotProtocol) {
  // Exhaust the logical page pool so the pager must evict; the protocol work of a
  // pageout (sync/flush of the victim) is visible in the protocol counters, and the
  // round trip itself in the pager's own counters.
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 4;
  mo.config.local_pages_per_proc = 4;
  mo.policy = PolicySpec::MoveLimit(4);
  mo.enable_pager = true;
  Machine machine(mo);
  Task* task = machine.CreateTask("pager");
  VirtAddr va = task->MapAnonymous("data", 8 * machine.page_size());

  for (std::uint32_t i = 0; i < 8; ++i) {
    machine.StoreWord(*task, 0, va + static_cast<VirtAddr>(i) * machine.page_size(),
                      i + 1);
  }
  ASSERT_NE(machine.pager(), nullptr);
  EXPECT_GT(machine.pager()->stats().pageouts, 0u);
  // Touch the first page again: it was paged out and must come back with content.
  EXPECT_EQ(machine.LoadWord(*task, 0, va), 1u);
  EXPECT_GT(machine.pager()->stats().pageins, 0u);
}

// The observability layer's machine-wide event counts must agree with the golden
// counters — every emit site sits next to its counter increment.
TEST(GoldenCounters, HeatEventTotalsMatchMachineStats) {
  Harness h;
  Observability& obs = h.machine->observability();
  obs.EnableHeat();
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 7);
  h.machine->StoreWord(*h.task, 1, h.va, 8);
  (void)h.machine->LoadWord(*h.task, 2, h.va);
  h.policy.next = Placement::kGlobal;
  h.machine->pmap().RemoveAll(h.machine->DebugLogicalPage(*h.task, h.va));
  (void)h.machine->LoadWord(*h.task, 3, h.va);

  const MachineStats& s = h.machine->stats();
  const HeatProfile& heat = obs.heat();
  EXPECT_EQ(heat.machine_events(TraceEventType::kPageFault), s.page_faults);
  EXPECT_EQ(heat.machine_events(TraceEventType::kZeroFill), s.zero_fills);
  EXPECT_EQ(heat.machine_events(TraceEventType::kReplicate), s.page_copies);
  EXPECT_EQ(heat.machine_events(TraceEventType::kSync), s.page_syncs);
  EXPECT_EQ(heat.machine_events(TraceEventType::kFlush), s.page_flushes);
  EXPECT_EQ(heat.machine_events(TraceEventType::kUnmap), s.page_unmaps);
  EXPECT_EQ(heat.machine_events(TraceEventType::kMigrate), s.ownership_moves);
  EXPECT_EQ(heat.machine_events(TraceEventType::kLocalAllocFail), s.local_alloc_failures);
}

}  // namespace
}  // namespace ace
