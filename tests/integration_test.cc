// Cross-module integration tests: pager under threaded load, remote-homed pageout,
// reconsideration with the re-examination daemon, bus contention, and multi-feature
// combinations.

#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "src/threads/runtime.h"
#include "src/threads/sim_span.h"
#include "src/threads/sync.h"
#include "tests/machine_invariants.h"

namespace ace {
namespace {

TEST(Integration, PagingUnderThreadedLoad) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.config.global_pages = 8;
  mo.config.local_pages_per_proc = 8;
  mo.enable_pager = true;
  mo.pager.disk_read_ns = 500'000;
  mo.pager.disk_write_ns = 500'000;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  // 24 pages of per-thread data on an 8-page machine.
  constexpr std::uint32_t kPagesPerThread = 6;
  VirtAddr data = t->MapAnonymous("data", 4ull * kPagesPerThread * 4096);

  Runtime rt(&m, t);
  rt.Run(4, [&](int tid, Env& env) {
    VirtAddr mine = data + static_cast<VirtAddr>(tid) * kPagesPerThread * 4096;
    for (int pass = 0; pass < 3; ++pass) {
      for (std::uint32_t p = 0; p < kPagesPerThread; ++p) {
        VirtAddr va = mine + static_cast<VirtAddr>(p) * 4096;
        std::uint32_t expected = static_cast<std::uint32_t>(tid * 100 + p);
        if (pass == 0) {
          env.Store(va, expected);
        } else {
          EXPECT_EQ(env.Load(va), expected) << "tid " << tid << " page " << p;
        }
      }
    }
  });
  EXPECT_GT(m.pager()->stats().pageouts, 0u);
  EXPECT_GT(m.pager()->stats().pageins, 0u);
  CheckMachineInvariants(m);
}

TEST(Integration, RemoteHomedPageSurvivesPageout) {
  Machine::Options mo;
  mo.config.num_processors = 3;
  mo.config.global_pages = 3;
  mo.config.local_pages_per_proc = 4;
  mo.policy = PolicySpec::RemoteHome(1);
  mo.enable_pager = true;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr shared = t->MapAnonymous("shared", m.page_size());
  // Home the page remotely (ping-pong past threshold 1).
  for (int i = 0; i < 6; ++i) {
    m.StoreWord(*t, i % 2, shared, static_cast<std::uint32_t>(i + 50));
  }
  ASSERT_EQ(m.PageInfoFor(*t, shared).state, PageState::kRemoteHomed);
  // Force it out with fresh allocations.
  VirtAddr filler = t->MapAnonymous("filler", 3 * m.page_size());
  for (int p = 0; p < 3; ++p) {
    m.StoreWord(*t, 2, filler + static_cast<VirtAddr>(p) * m.page_size(), 1);
  }
  // Content must come back intact; placement starts over.
  EXPECT_EQ(m.LoadWord(*t, 1, shared), 55u);
  CheckMachineInvariants(m);
}

TEST(Integration, ReconsiderWithReexamineDaemon) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.policy = PolicySpec::Reconsider(2, /*after_ns=*/1'000'000);
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr va = t->MapAnonymous("p", m.page_size());
  for (int i = 0; i < 8; ++i) {
    m.StoreWord(*t, i % 2, va, 1);  // pin under the reconsider policy
  }
  ASSERT_EQ(m.PageInfoFor(*t, va).state, PageState::kGlobalWritable);
  // Let virtual time pass, run the daemon, touch the page from one processor only.
  m.Compute(0, 2'000'000);
  m.ReexamineGlobalPages(0);
  m.StoreWord(*t, 0, va, 9);
  EXPECT_EQ(m.PageInfoFor(*t, va).state, PageState::kLocalWritable);
  EXPECT_GT(m.reconsider_policy()->unpin_events(), 0u);
  CheckMachineInvariants(m);
}

TEST(Integration, BusContentionDilatesGlobalReferences) {
  auto run = [](bool contention) {
    Machine::Options mo;
    mo.config.num_processors = 2;
    mo.bus.model_contention = contention;
    mo.bus.capacity_bytes_per_sec = 1000.0;  // absurdly slow bus: saturates instantly
    mo.bus.saturation_point = 0.0001;
    Machine m(mo);
    Task* t = m.CreateTask("t");
    VirtAddr va = t->MapAnonymous("p", m.page_size(), Protection::kReadWrite,
                                  PlacementPragma::kNoncacheable);
    for (int i = 0; i < 200; ++i) {
      m.StoreWord(*t, 0, va, static_cast<std::uint32_t>(i));
    }
    return m.clocks().TotalUser();
  };
  EXPECT_GT(run(true), run(false));
}

TEST(Integration, SpanWorkloadAcrossAllFeatures) {
  // Pager + reconsider policy + threaded barrier workload, verified end to end.
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.config.global_pages = 24;
  mo.config.local_pages_per_proc = 16;
  mo.policy = PolicySpec::Reconsider(4, 5'000'000);
  mo.enable_pager = true;
  Machine m(mo);
  Task* t = m.CreateTask("t");
  VirtAddr data = t->MapAnonymous("data", 16 * 4096);
  VirtAddr bar = t->MapAnonymous("barrier", 4096);
  Barrier barrier(bar, 4);

  Runtime rt(&m, t);
  rt.Run(4, [&](int tid, Env& env) {
    std::uint32_t sense = 0;
    SimSpan<std::uint32_t> a(env, data, 16 * 1024);
    for (int phase = 0; phase < 3; ++phase) {
      for (int i = tid; i < 16 * 1024; i += 4 * 64) {
        a[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(phase * 1000 + i);
      }
      barrier.Wait(env, &sense);
      for (int i = (tid + 1) % 4; i < 16 * 1024; i += 4 * 64) {
        EXPECT_EQ(a.Get(static_cast<std::size_t>(i)),
                  static_cast<std::uint32_t>(phase * 1000 + i));
      }
      barrier.Wait(env, &sense);
    }
  });
  CheckMachineInvariants(m);
}

TEST(Integration, TwoTasksShareTheMachineFairly) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  Machine m(mo);
  Task* t1 = m.CreateTask("t1");
  Task* t2 = m.CreateTask("t2");
  VirtAddr a1 = t1->MapAnonymous("a", 2 * m.page_size());
  VirtAddr a2 = t2->MapAnonymous("a", 2 * m.page_size());
  for (int i = 0; i < 50; ++i) {
    m.StoreWord(*t1, 0, a1 + static_cast<VirtAddr>((i % 512) * 4), static_cast<std::uint32_t>(i));
    m.StoreWord(*t2, 1, a2 + static_cast<VirtAddr>((i % 512) * 4),
                static_cast<std::uint32_t>(i + 1000));
  }
  // Word 0 was written only at i == 0; word 49 at i == 49. Cross-processor reads see
  // each task's own data with no bleed-through.
  EXPECT_EQ(m.DebugRead(*t1, a1), 0u);
  EXPECT_EQ(m.DebugRead(*t2, a2), 1000u);
  EXPECT_EQ(m.LoadWord(*t1, 1, a1 + 49 * 4), 49u);
  EXPECT_EQ(m.LoadWord(*t2, 0, a2 + 49 * 4), 1049u);
  CheckMachineInvariants(m);
}

}  // namespace
}  // namespace ace
