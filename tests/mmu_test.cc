// Unit tests for src/mmu: translation, faults, the Rosetta single-mapping quirk.

#include <gtest/gtest.h>

#include "src/mmu/mmu.h"

namespace ace {
namespace {

TEST(Mmu, TranslateMissesOnEmpty) {
  Mmu mmu(0, /*rosetta_single_mapping=*/true);
  TranslateResult r = mmu.Translate(5, AccessKind::kFetch);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.fault, FaultKind::kNoMapping);
}

TEST(Mmu, EnterThenTranslate) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kReadWrite);
  TranslateResult r = mmu.Translate(5, AccessKind::kStore);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame, FrameRef::Global(2));
  EXPECT_EQ(r.prot, Protection::kReadWrite);
}

TEST(Mmu, ProtectionFaultOnReadOnlyStore) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Local(0, 1), Protection::kRead);
  EXPECT_TRUE(mmu.Translate(5, AccessKind::kFetch).ok());
  TranslateResult r = mmu.Translate(5, AccessKind::kStore);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.fault, FaultKind::kProtection);
}

TEST(Mmu, ReplaceMappingSameVpage) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kRead);
  mmu.Enter(5, FrameRef::Local(0, 3), Protection::kReadWrite);
  TranslateResult r = mmu.Translate(5, AccessKind::kStore);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.frame, FrameRef::Local(0, 3));
  EXPECT_EQ(mmu.MappingCount(), 1u);
}

TEST(Mmu, RosettaDisplacesSecondVirtualAddressForSameFrame) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kRead);
  Mmu::EnterResult er = mmu.Enter(9, FrameRef::Global(2), Protection::kRead);
  EXPECT_TRUE(er.displaced);
  EXPECT_EQ(er.displaced_vpage, 5u);
  EXPECT_FALSE(mmu.Translate(5, AccessKind::kFetch).ok());  // displaced -> refault
  EXPECT_TRUE(mmu.Translate(9, AccessKind::kFetch).ok());
  EXPECT_EQ(mmu.MappingCount(), 1u);
}

TEST(Mmu, NoDisplacementWhenQuirkDisabled) {
  Mmu mmu(0, /*rosetta_single_mapping=*/false);
  mmu.Enter(5, FrameRef::Global(2), Protection::kRead);
  Mmu::EnterResult er = mmu.Enter(9, FrameRef::Global(2), Protection::kRead);
  EXPECT_FALSE(er.displaced);
  EXPECT_TRUE(mmu.Translate(5, AccessKind::kFetch).ok());
  EXPECT_TRUE(mmu.Translate(9, AccessKind::kFetch).ok());
}

TEST(Mmu, ReenteringSameVpageSameFrameDoesNotDisplaceItself) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kRead);
  Mmu::EnterResult er = mmu.Enter(5, FrameRef::Global(2), Protection::kReadWrite);
  EXPECT_FALSE(er.displaced);
  EXPECT_EQ(mmu.Translate(5, AccessKind::kStore).prot, Protection::kReadWrite);
}

TEST(Mmu, RemoveDropsMappingAndReverseEntry) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kRead);
  EXPECT_TRUE(mmu.Remove(5));
  EXPECT_FALSE(mmu.Remove(5));  // already gone
  // Frame 2 is free again: a new vpage can map it without displacement.
  Mmu::EnterResult er = mmu.Enter(9, FrameRef::Global(2), Protection::kRead);
  EXPECT_FALSE(er.displaced);
}

TEST(Mmu, DowngradeTightensButNeverLoosens) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kReadWrite);
  mmu.Downgrade(5, Protection::kRead);
  EXPECT_EQ(mmu.Translate(5, AccessKind::kFetch).prot, Protection::kRead);
  EXPECT_FALSE(mmu.Translate(5, AccessKind::kStore).ok());
  // Downgrade with a looser protection is a no-op.
  mmu.Downgrade(5, Protection::kReadWrite);
  EXPECT_EQ(mmu.Translate(5, AccessKind::kFetch).prot, Protection::kRead);
  // Downgrade of an absent vpage is a no-op.
  mmu.Downgrade(77, Protection::kRead);
}

TEST(Mmu, RemapVpageToNewFrameCleansReverseIndex) {
  Mmu mmu(0, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kRead);
  mmu.Enter(5, FrameRef::Global(3), Protection::kRead);  // vpage 5 now -> frame 3
  // Frame 2's reverse entry must be gone: mapping it from vpage 9 displaces nothing.
  Mmu::EnterResult er = mmu.Enter(9, FrameRef::Global(2), Protection::kRead);
  EXPECT_FALSE(er.displaced);
  EXPECT_TRUE(mmu.Translate(5, AccessKind::kFetch).ok());
  EXPECT_TRUE(mmu.Translate(9, AccessKind::kFetch).ok());
}

TEST(Mmu, RemoveAllClearsEverything) {
  Mmu mmu(0, true);
  for (VirtPage v = 0; v < 10; ++v) {
    mmu.Enter(v, FrameRef::Global(static_cast<std::uint32_t>(v)), Protection::kRead);
  }
  EXPECT_EQ(mmu.MappingCount(), 10u);
  mmu.RemoveAll();
  EXPECT_EQ(mmu.MappingCount(), 0u);
}

TEST(Mmu, ForEachMappingVisitsAll) {
  Mmu mmu(1, true);
  mmu.Enter(5, FrameRef::Global(2), Protection::kRead);
  mmu.Enter(6, FrameRef::Local(1, 0), Protection::kReadWrite);
  int count = 0;
  mmu.ForEachMapping([&](VirtPage vpage, FrameRef frame, Protection prot) {
    ++count;
    if (vpage == 5) {
      EXPECT_EQ(frame, FrameRef::Global(2));
      EXPECT_EQ(prot, Protection::kRead);
    } else {
      EXPECT_EQ(vpage, 6u);
      EXPECT_EQ(frame, FrameRef::Local(1, 0));
    }
  });
  EXPECT_EQ(count, 2);
}

TEST(MmuArray, PerProcessorIsolation) {
  MmuArray mmus(3, true);
  mmus.At(0).Enter(5, FrameRef::Global(2), Protection::kRead);
  EXPECT_TRUE(mmus.At(0).Translate(5, AccessKind::kFetch).ok());
  EXPECT_FALSE(mmus.At(1).Translate(5, AccessKind::kFetch).ok());
  EXPECT_EQ(mmus.num_processors(), 3);
  EXPECT_EQ(mmus.At(2).proc(), 2);
}

}  // namespace
}  // namespace ace
