// Unit tests for the NUMA manager: every cell of Tables 1 and 2, zero-fill laziness,
// content movement, move counting, page reset, and the local-memory-full fallback.

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <tuple>
#include <vector>

#include "src/machine/machine.h"
#include "tests/machine_invariants.h"

namespace ace {
namespace {

struct Cell {
  AccessKind kind;
  Placement decision;
  int start;  // 0=RO(replica on node 1), 1=GW, 2=LW own, 3=LW other
  // expected results:
  PageState new_state;
  bool copied;
  const char* cleanup;  // first cleanup action, or "No action"
};

class ProtocolCellTest : public ::testing::TestWithParam<Cell> {};

// A fixture machine with a scripted policy.
struct CellHarness {
  ScriptedPolicy policy;
  std::unique_ptr<Machine> machine;
  Task* task = nullptr;
  VirtAddr va = 0;
  LogicalPage lp = kNoLogicalPage;

  CellHarness() {
    Machine::Options mo;
    mo.config.num_processors = 3;
    mo.config.global_pages = 16;
    mo.config.local_pages_per_proc = 8;
    mo.custom_policy = &policy;
    machine = std::make_unique<Machine>(mo);
    task = machine->CreateTask("cell");
    va = task->MapAnonymous("page", machine->page_size());
  }

  void Prepare(int start) {
    switch (start) {
      case 0:  // Read-Only with a replica on node 1
        policy.next = Placement::kLocal;
        (void)machine->LoadWord(*task, 1, va);
        break;
      case 1:  // Global-Writable
        policy.next = Placement::kGlobal;
        machine->StoreWord(*task, 1, va, 1);
        break;
      case 2:  // Local-Writable on the requesting node (0)
        policy.next = Placement::kLocal;
        machine->StoreWord(*task, 0, va, 1);
        break;
      case 3:  // Local-Writable on another node (1)
        policy.next = Placement::kLocal;
        machine->StoreWord(*task, 1, va, 1);
        break;
    }
    lp = machine->DebugLogicalPage(*task, va);
    machine->pmap().RemoveAll(lp);  // force the next access through the manager
  }
};

TEST_P(ProtocolCellTest, ActionsMatchPaperTables) {
  const Cell& cell = GetParam();
  CellHarness h;
  h.Prepare(cell.start);

  NumaManager& manager = h.machine->numa_manager();
  manager.set_trace_actions(true);
  h.policy.next = cell.decision;
  if (cell.kind == AccessKind::kFetch) {
    (void)h.machine->LoadWord(*h.task, 0, h.va);
  } else {
    h.machine->StoreWord(*h.task, 0, h.va, 2);
  }
  const ActionTrace& trace = manager.last_trace();
  EXPECT_EQ(trace.new_state, cell.new_state);
  EXPECT_EQ(trace.copied_to_local, cell.copied);
  if (std::string_view(cell.cleanup).empty()) {
    EXPECT_TRUE(trace.cleanup.empty());
  } else {
    ASSERT_FALSE(trace.cleanup.empty());
    EXPECT_STREQ(trace.cleanup[0].c_str(), cell.cleanup);
  }
  manager.set_trace_actions(false);
  CheckMachineInvariants(*h.machine);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Reads, ProtocolCellTest,
    ::testing::Values(
        Cell{AccessKind::kFetch, Placement::kLocal, 0, PageState::kReadOnly, true, ""},
        Cell{AccessKind::kFetch, Placement::kLocal, 1, PageState::kReadOnly, true,
             "unmap all"},
        Cell{AccessKind::kFetch, Placement::kLocal, 2, PageState::kLocalWritable, false,
             "No action"},
        Cell{AccessKind::kFetch, Placement::kLocal, 3, PageState::kReadOnly, true,
             "sync&flush other"},
        Cell{AccessKind::kFetch, Placement::kGlobal, 0, PageState::kGlobalWritable, false,
             "flush all"},
        Cell{AccessKind::kFetch, Placement::kGlobal, 1, PageState::kGlobalWritable, false,
             "No action"},
        Cell{AccessKind::kFetch, Placement::kGlobal, 2, PageState::kGlobalWritable, false,
             "sync&flush own"},
        Cell{AccessKind::kFetch, Placement::kGlobal, 3, PageState::kGlobalWritable, false,
             "sync&flush other"}));

INSTANTIATE_TEST_SUITE_P(
    Table2Writes, ProtocolCellTest,
    ::testing::Values(
        Cell{AccessKind::kStore, Placement::kLocal, 0, PageState::kLocalWritable, true,
             "flush other"},
        Cell{AccessKind::kStore, Placement::kLocal, 1, PageState::kLocalWritable, true,
             "unmap all"},
        Cell{AccessKind::kStore, Placement::kLocal, 2, PageState::kLocalWritable, false,
             "No action"},
        Cell{AccessKind::kStore, Placement::kLocal, 3, PageState::kLocalWritable, true,
             "sync&flush other"},
        Cell{AccessKind::kStore, Placement::kGlobal, 0, PageState::kGlobalWritable, false,
             "flush all"},
        Cell{AccessKind::kStore, Placement::kGlobal, 1, PageState::kGlobalWritable, false,
             "No action"},
        Cell{AccessKind::kStore, Placement::kGlobal, 2, PageState::kGlobalWritable, false,
             "sync&flush own"},
        Cell{AccessKind::kStore, Placement::kGlobal, 3, PageState::kGlobalWritable, false,
             "sync&flush other"}));

// --- content correctness through transitions ----------------------------------------

TEST(NumaManagerContent, WriteSurvivesMigrationChain) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 0x11111111);
  h.machine->StoreWord(*h.task, 1, h.va + 4, 0x22222222);  // migrates 0 -> 1
  h.machine->StoreWord(*h.task, 2, h.va + 8, 0x33333333);  // migrates 1 -> 2
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 0x11111111u);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 1, h.va + 4), 0x22222222u);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va + 8), 0x33333333u);
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerContent, SyncWritesBackBeforeGlobalPlacement) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 1, h.va, 77);  // LW on node 1
  h.policy.next = Placement::kGlobal;
  // A read with a GLOBAL decision must see the synced content from node 1's cache.
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va), 77u);
  EXPECT_EQ(h.machine->PageInfoFor(*h.task, h.va).state, PageState::kGlobalWritable);
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerContent, ReplicasAreIdenticalAndDropOnWrite) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 1234);
  (void)h.machine->LoadWord(*h.task, 1, h.va);  // replicate to 1
  (void)h.machine->LoadWord(*h.task, 2, h.va);  // replicate to 2
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(info.state, PageState::kReadOnly);
  // Table 1: the read by node 1 sync&flushed node 0's writable copy, then nodes 1 and
  // 2 acquired read-only replicas.
  EXPECT_EQ(info.copies.Count(), 2);
  CheckMachineInvariants(*h.machine);
  // A write invalidates the other replicas.
  h.machine->StoreWord(*h.task, 2, h.va, 5678);
  const NumaPageInfo& after = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(after.state, PageState::kLocalWritable);
  EXPECT_EQ(after.owner, 2);
  EXPECT_EQ(after.copies.Count(), 1);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 5678u);
  CheckMachineInvariants(*h.machine);
}

// --- lazy zero-fill -------------------------------------------------------------------

TEST(NumaManagerZeroFill, FirstTouchZeroesLocallyNotGlobally) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  EXPECT_EQ(h.machine->LoadWord(*h.task, 1, h.va), 0u);
  // The zero-fill happened in node 1's local memory; there was no page copy and no
  // global-memory zeroing (that is the paper's lazy zero-fill optimization).
  EXPECT_EQ(h.machine->stats().zero_fills, 1u);
  EXPECT_EQ(h.machine->stats().page_copies, 0u);
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_TRUE(info.zero_pending);  // still pending: no writable mapping yet
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerZeroFill, SecondReplicaOfPendingPageIsZeroedNotCopied) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  (void)h.machine->LoadWord(*h.task, 0, h.va);
  (void)h.machine->LoadWord(*h.task, 1, h.va);
  EXPECT_EQ(h.machine->stats().zero_fills, 2u);  // two zeroed replicas
  EXPECT_EQ(h.machine->stats().page_copies, 0u);  // never copied garbage
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerZeroFill, PendingClearsOnWrite) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 9);
  EXPECT_FALSE(h.machine->PageInfoFor(*h.task, h.va).zero_pending);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va + 8), 0u);  // rest of page is zero
}

TEST(NumaManagerZeroFill, GlobalPlacementZeroesGlobalFrame) {
  CellHarness h;
  h.policy.next = Placement::kGlobal;
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 0u);
  const NumaPageInfo& info = h.machine->PageInfoFor(*h.task, h.va);
  EXPECT_EQ(info.state, PageState::kGlobalWritable);
  EXPECT_FALSE(info.zero_pending);
  CheckMachineInvariants(*h.machine);
}

// --- move counting -------------------------------------------------------------------

TEST(NumaManagerMoves, WriteMigrationCountsOncePerTransfer) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 1);  // first placement: no move
  EXPECT_EQ(h.machine->stats().ownership_moves, 0u);
  h.machine->StoreWord(*h.task, 1, h.va, 2);  // 0 -> 1
  EXPECT_EQ(h.machine->stats().ownership_moves, 1u);
  h.machine->StoreWord(*h.task, 1, h.va + 4, 3);  // same owner: no move
  EXPECT_EQ(h.machine->stats().ownership_moves, 1u);
  h.machine->StoreWord(*h.task, 0, h.va, 4);  // 1 -> 0
  EXPECT_EQ(h.machine->stats().ownership_moves, 2u);
}

TEST(NumaManagerMoves, ReadFromOwnerElsewhereCountsAsMove) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 1);
  (void)h.machine->LoadWord(*h.task, 1, h.va);  // page migrates 0 -> 1 (read)
  EXPECT_EQ(h.machine->stats().ownership_moves, 1u);
  // Single-writer/multi-reader cycles must accumulate moves and eventually pin;
  // this is the thrashing pattern that motivated counting read transfers.
  for (int i = 0; i < 6; ++i) {
    h.machine->StoreWord(*h.task, 0, h.va, static_cast<std::uint32_t>(i));
    (void)h.machine->LoadWord(*h.task, 1, h.va);
  }
  EXPECT_GE(h.machine->stats().ownership_moves, 6u);
}

TEST(NumaManagerMoves, ReplicationDoesNotCountMoves) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  (void)h.machine->LoadWord(*h.task, 0, h.va);
  (void)h.machine->LoadWord(*h.task, 1, h.va);
  (void)h.machine->LoadWord(*h.task, 2, h.va);
  EXPECT_EQ(h.machine->stats().ownership_moves, 0u);
}

// --- page reset / free -----------------------------------------------------------------

TEST(NumaManagerReset, FreedPageReleasesFramesAndState) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 1, h.va, 7);
  std::uint32_t free_before = h.machine->physical_memory().FreeLocalFrames(1);
  h.task->UnmapRegion(h.va, h.machine->page_pool());
  h.machine->page_pool().Drain();
  EXPECT_EQ(h.machine->physical_memory().FreeLocalFrames(1), free_before + 1);
  CheckMachineInvariants(*h.machine);
}

// --- local memory exhaustion -------------------------------------------------------------

TEST(NumaManagerPressure, FallsBackToGlobalWhenLocalFull) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 16;
  mo.config.local_pages_per_proc = 2;  // tiny cache
  Machine m(mo);
  Task* task = m.CreateTask("t");
  VirtAddr region = task->MapAnonymous("big", 8 * m.page_size());
  for (int p = 0; p < 8; ++p) {
    m.StoreWord(*task, 0, region + static_cast<VirtAddr>(p) * m.page_size(),
                static_cast<std::uint32_t>(p));
  }
  // Only 2 local frames exist; the rest of the pages had to go global.
  EXPECT_GT(m.stats().local_alloc_failures, 0u);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(m.LoadWord(*task, 0, region + static_cast<VirtAddr>(p) * m.page_size()),
              static_cast<std::uint32_t>(p));
  }
  CheckMachineInvariants(m);
}

// --- pmap_copy_page ---------------------------------------------------------------------

TEST(NumaManagerCopy, CopyLogicalPagePropagatesContent) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 1, h.va, 0xfeedface);  // LW on node 1
  VirtAddr dst_va = h.task->MapAnonymous("dst", h.machine->page_size());
  LogicalPage src = h.machine->DebugLogicalPage(*h.task, h.va);
  LogicalPage dst = h.machine->DebugLogicalPage(*h.task, dst_va);
  h.machine->pmap().CopyPage(src, dst);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, dst_va), 0xfeedfaceu);
}

TEST(NumaManagerCopy, CopyOfPendingZeroPageStaysLazy) {
  CellHarness h;
  LogicalPage src = h.machine->DebugLogicalPage(*h.task, h.va);  // pending zero
  VirtAddr dst_va = h.task->MapAnonymous("dst", h.machine->page_size());
  LogicalPage dst = h.machine->DebugLogicalPage(*h.task, dst_va);
  std::uint64_t copies_before = h.machine->stats().page_copies;
  h.machine->pmap().CopyPage(src, dst);
  EXPECT_EQ(h.machine->stats().page_copies, copies_before);  // no physical copy
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, dst_va), 0u);
}

// --- pageout round-trips -----------------------------------------------------------------
//
// PrepareForPageout must collapse any cache state so the page's current content sits in
// its global frame; after ResetPage + LoadPageContent the page behaves like a freshly
// allocated page holding that content, with all placement decisions starting over.

std::vector<std::uint8_t> PageOutAndBackIn(CellHarness& h) {
  NumaManager& manager = h.machine->numa_manager();
  h.lp = h.machine->DebugLogicalPage(*h.task, h.va);
  const std::uint8_t* content = manager.PrepareForPageout(h.lp, 0);
  std::vector<std::uint8_t> saved(content, content + h.machine->page_size());
  // Between Prepare and Reset the page is a bare global frame: read-only, unowned,
  // no local copies, no pending zero-fill.
  const NumaPageInfo& bare = manager.PageInfo(h.lp);
  EXPECT_EQ(bare.state, PageState::kReadOnly);
  EXPECT_EQ(bare.owner, kNoProc);
  EXPECT_TRUE(bare.copies.Empty());
  EXPECT_FALSE(bare.zero_pending);
  manager.ResetPage(h.lp, 0);
  manager.LoadPageContent(h.lp, saved.data(), 0);
  return saved;
}

TEST(NumaManagerPageout, RoundTripFromLocalWritablePreservesOwnerContent) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 1, h.va, 0xfeedface);  // LW on node 1, global stale
  h.machine->StoreWord(*h.task, 1, h.va + 8, 0x1234);
  ASSERT_EQ(h.machine->PageInfoFor(*h.task, h.va).state, PageState::kLocalWritable);

  (void)PageOutAndBackIn(h);
  // The owner's frame was synced and released before its content was handed out.
  EXPECT_EQ(h.machine->physical_memory().FreeLocalFrames(1),
            h.machine->physical_memory().local_pages_per_proc());
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va), 0xfeedfaceu);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va + 8), 0x1234u);
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerPageout, RoundTripFromReadOnlyDropsAllReplicas) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 4242);
  (void)h.machine->LoadWord(*h.task, 1, h.va);  // RO, replicas on 1 and 2
  (void)h.machine->LoadWord(*h.task, 2, h.va);
  ASSERT_EQ(h.machine->PageInfoFor(*h.task, h.va).copies.Count(), 2);

  (void)PageOutAndBackIn(h);
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(h.machine->physical_memory().FreeLocalFrames(p),
              h.machine->physical_memory().local_pages_per_proc());
  }
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 4242u);
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerPageout, RoundTripFromGlobalWritable) {
  CellHarness h;
  h.policy.next = Placement::kGlobal;
  h.machine->StoreWord(*h.task, 1, h.va, 31u);
  ASSERT_EQ(h.machine->PageInfoFor(*h.task, h.va).state, PageState::kGlobalWritable);

  (void)PageOutAndBackIn(h);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 31u);
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerPageout, RoundTripFromRemoteHomedSyncsTheHomeCopy) {
  CellHarness h;
  h.policy.next = Placement::kRemoteHome;
  h.machine->StoreWord(*h.task, 1, h.va, 0xcafe);  // homed at node 1
  ASSERT_EQ(h.machine->PageInfoFor(*h.task, h.va).state, PageState::kRemoteHomed);
  ASSERT_EQ(h.machine->PageInfoFor(*h.task, h.va).owner, 1);

  std::vector<std::uint8_t> saved = PageOutAndBackIn(h);
  std::uint32_t first_word;
  std::memcpy(&first_word, saved.data(), sizeof(first_word));
  EXPECT_EQ(first_word, 0xcafeu);  // home copy reached the paged-out image
  EXPECT_EQ(h.machine->physical_memory().FreeLocalFrames(1),
            h.machine->physical_memory().local_pages_per_proc());
  h.policy.next = Placement::kLocal;
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va), 0xcafeu);
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerPageout, RoundTripMaterializesPendingZeros) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  ASSERT_EQ(h.machine->LoadWord(*h.task, 1, h.va), 0u);  // RO replica, zero pending
  ASSERT_TRUE(h.machine->PageInfoFor(*h.task, h.va).zero_pending);

  std::vector<std::uint8_t> saved = PageOutAndBackIn(h);
  // The lazy zero-fill cannot stay lazy across a pageout: the image must be zeros.
  for (std::uint8_t byte : saved) {
    ASSERT_EQ(byte, 0);
  }
  EXPECT_FALSE(h.machine->PageInfoFor(*h.task, h.va).zero_pending);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 2, h.va), 0u);
  CheckMachineInvariants(*h.machine);
}

TEST(NumaManagerPageout, RoundTripResetsMoveBudgetAndPin) {
  Machine::Options mo;
  mo.config.num_processors = 3;
  mo.config.global_pages = 16;
  mo.config.local_pages_per_proc = 8;
  mo.policy = PolicySpec::MoveLimit(1);
  Machine m(mo);
  Task* task = m.CreateTask("t");
  VirtAddr va = task->MapAnonymous("page", m.page_size());
  m.StoreWord(*task, 0, va, 10);
  m.StoreWord(*task, 1, va, 11);  // one move; budget exhausted
  m.StoreWord(*task, 0, va, 12);  // pins the page globally
  LogicalPage lp = m.DebugLogicalPage(*task, va);
  ASSERT_TRUE(m.move_limit_policy()->IsPinned(lp));

  NumaManager& manager = m.numa_manager();
  const std::uint8_t* content = manager.PrepareForPageout(lp, 0);
  std::vector<std::uint8_t> saved(content, content + m.page_size());
  manager.ResetPage(lp, 0);
  manager.LoadPageContent(lp, saved.data(), 0);

  // A paged-in page is a new placement problem: the move count and pin are gone,
  // so the first write caches locally again, but the content survived the trip.
  EXPECT_EQ(m.move_limit_policy()->MoveCount(lp), 0);
  EXPECT_FALSE(m.move_limit_policy()->IsPinned(lp));
  EXPECT_EQ(m.LoadWord(*task, 2, va), 12u);
  m.StoreWord(*task, 2, va + 4, 13);
  EXPECT_EQ(m.PageInfoFor(*task, va).state, PageState::kLocalWritable);
  EXPECT_EQ(m.PageInfoFor(*task, va).owner, 2);
  CheckMachineInvariants(m);
}

// --- debug access ------------------------------------------------------------------------

TEST(NumaManagerDebug, DebugReadSeesOwnerCopy) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 2, h.va, 31337);
  EXPECT_EQ(h.machine->DebugRead(*h.task, h.va), 31337u);
}

TEST(NumaManagerDebug, DebugWriteVisibleToAllStatesAndKeepsReplicasEqual) {
  CellHarness h;
  h.policy.next = Placement::kLocal;
  h.machine->StoreWord(*h.task, 0, h.va, 1);
  (void)h.machine->LoadWord(*h.task, 1, h.va);  // RO with replicas
  h.machine->DebugWrite(*h.task, h.va + 16, 0xabab);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 0, h.va + 16), 0xababu);
  EXPECT_EQ(h.machine->LoadWord(*h.task, 1, h.va + 16), 0xababu);
  CheckMachineInvariants(*h.machine);
}

}  // namespace
}  // namespace ace
