#!/bin/sh
# Preemption recovery: SIGKILL a checkpointed ace_bench sweep mid-run, resume from
# the journal, and require the merged result to be byte-identical to an
# uninterrupted reference run (the tentpole acceptance criterion; CI runs the same
# sequence in the preemption-recovery job).
set -eu

ACE_BENCH="$1"
WORKDIR="$2"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR"

SWEEP="--suite smoke --threads 3 --scale 0.1 --quiet --no-host"

# The uninterrupted reference (--no-host drops wall-clock stats, the only
# run-to-run-varying bytes).
"$ACE_BENCH" $SWEEP --workers 4 --out reference.json

# A checkpointed run on one worker (slow enough to catch mid-sweep), killed with
# SIGKILL — no cleanup handlers, exactly like an OOM-kill or a preempted CI runner.
"$ACE_BENCH" $SWEEP --workers 1 --checkpoint ckpt --out never_written.json &
pid=$!
i=0
while [ "$i" -lt 200 ]; do
  n=$(ls ckpt 2>/dev/null | grep -c '\.json$' || true)
  [ "${n:-0}" -ge 1 ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
  i=$((i + 1))
done
kill -9 "$pid" 2>/dev/null || echo "note: sweep finished before SIGKILL landed"
wait "$pid" 2>/dev/null || true

frags=$(ls ckpt | grep -c '\.json$' || true)
echo "SIGKILL with $frags fragment(s) journaled"
[ "$frags" -ge 1 ] || { echo "FAIL: no fragments journaled before the kill"; exit 1; }

# Resume: completed cells load from the journal, the rest run live.
"$ACE_BENCH" $SWEEP --workers 4 --checkpoint ckpt --resume --out resumed.json

cmp reference.json resumed.json
echo "PASS: resumed result is byte-identical to the uninterrupted reference"
