// Tests for the fault-injection subsystem (src/inject) and the graceful-degradation
// semantics it exercises: plan grammar round trips, schedule semantics, injector
// determinism, the per-PageState exhaustion fallbacks (with and without the pageout
// daemon), and zero-cost-when-unarmed.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/inject/fault_plan.h"
#include "src/machine/chaos.h"
#include "src/machine/machine.h"
#include "src/machine/recovery.h"
#include "src/numa/replica_manager.h"
#include "tests/machine_invariants.h"

namespace ace {
namespace {

FaultPlan Plan(const std::string& text) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(text, &plan, &error)) << text << ": " << error;
  return plan;
}

// --- plan grammar ---------------------------------------------------------------------

TEST(FaultPlan, FormatParseRoundTrip) {
  const char* kCanonical =
      "local-exhausted@every:3;copy-fail@nth:5;pool-exhausted@p:0.02:7;"
      "frame-alloc@window:100:2000;skip-sync@always";
  FaultPlan plan = Plan(kCanonical);
  ASSERT_EQ(plan.schedules.size(), 5u);
  EXPECT_EQ(plan.Format(), kCanonical);

  FaultPlan reparsed = Plan(plan.Format());
  ASSERT_EQ(reparsed.schedules.size(), plan.schedules.size());
  for (std::size_t i = 0; i < plan.schedules.size(); ++i) {
    EXPECT_EQ(reparsed.schedules[i].Format(), plan.schedules[i].Format()) << i;
  }
}

TEST(FaultPlan, ParsedFieldsAreExact) {
  FaultPlan plan = Plan("victim-contention@every:4");
  ASSERT_EQ(plan.schedules.size(), 1u);
  EXPECT_EQ(plan.schedules[0].site, FaultSite::kPageoutVictimContention);
  EXPECT_EQ(plan.schedules[0].kind, FaultSchedule::Kind::kEveryK);
  EXPECT_EQ(plan.schedules[0].n, 4u);

  plan = Plan("pool-exhausted@p:0.25:99");
  EXPECT_EQ(plan.schedules[0].site, FaultSite::kGlobalPoolExhausted);
  EXPECT_DOUBLE_EQ(plan.schedules[0].probability, 0.25);
  EXPECT_EQ(plan.schedules[0].seed, 99u);

  plan = Plan("frame-alloc@window:10:20");
  EXPECT_EQ(plan.schedules[0].t_begin, 10);
  EXPECT_EQ(plan.schedules[0].t_end, 20);
}

// One case per malformed-grammar class. Every rejection must name the offending
// schedule substring and its byte offset so a bad entry in a long plan is findable
// without bisecting.
TEST(FaultPlan, RejectsMalformedInput) {
  struct Case {
    const char* text;      // the whole plan handed to Parse
    const char* schedule;  // the schedule substring the error must quote
    std::size_t offset;    // its byte offset in `text`
  };
  const Case kCases[] = {
      {"copy-fail", "copy-fail", 0},                       // missing '@trigger'
      {"no-such-site@always", "no-such-site@always", 0},   // unknown site
      {"copy-fail@sometimes", "copy-fail@sometimes", 0},   // unknown trigger kind
      {"copy-fail@nth:", "copy-fail@nth:", 0},             // nth without a count
      {"copy-fail@nth:0", "copy-fail@nth:0", 0},           // nth of zero
      {"copy-fail@every:x", "copy-fail@every:x", 0},       // non-numeric period
      {"copy-fail@p:1.5", "copy-fail@p:1.5", 0},           // probability > 1
      {"copy-fail@p:-0.1", "copy-fail@p:-0.1", 0},         // probability < 0
      {"copy-fail@p:zzz", "copy-fail@p:zzz", 0},           // non-numeric probability
      {"copy-fail@p:0.5:abc", "copy-fail@p:0.5:abc", 0},   // malformed seed
      {"copy-fail@window:9", "copy-fail@window:9", 0},     // window missing T1
      {"copy-fail@window:5:5", "copy-fail@window:5:5", 0}, // empty window (T1 <= T0)
      {"copy-fail@window:a:b", "copy-fail@window:a:b", 0}, // non-numeric window bounds
      // The bad schedule buried mid-plan: the offset must point at it, not at 0.
      {"frame-alloc@nth:2;copy-fail@bogus;skip-sync@always", "copy-fail@bogus", 18},
  };
  for (const Case& c : kCases) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(c.text, &plan, &error)) << c.text;
    EXPECT_NE(error.find(std::string("'") + c.schedule + "'"), std::string::npos)
        << c.text << ": error does not quote the schedule: " << error;
    EXPECT_NE(error.find("at offset " + std::to_string(c.offset)), std::string::npos)
        << c.text << ": error does not carry the offset: " << error;
  }
}

// Every *well-formed* trigger class round-trips Format -> Parse -> Format exactly,
// so replay command lines built from Format() always re-parse.
TEST(FaultPlan, EveryTriggerClassRoundTrips) {
  const char* kPlans[] = {
      "copy-fail@nth:1",
      "local-exhausted@every:7",
      "pool-exhausted@p:0.125",
      "victim-contention@p:0.25:1234",
      "frame-alloc@window:100:2000",
      "skip-move-count@always",
  };
  for (const char* text : kPlans) {
    FaultPlan plan = Plan(text);
    ASSERT_EQ(plan.schedules.size(), 1u) << text;
    EXPECT_EQ(plan.Format(), text);
    EXPECT_EQ(Plan(plan.Format()).Format(), text);
  }
}

TEST(FaultPlan, ToleratesStraySeparators) {
  FaultPlan plan = Plan("copy-fail@always;;frame-alloc@nth:2;");
  EXPECT_EQ(plan.schedules.size(), 2u);
  EXPECT_TRUE(Plan(";").empty());
}

TEST(FaultPlan, EmptyPlanFormatsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.Format(), "");
}

// --- schedule semantics ---------------------------------------------------------------

TEST(FaultInjector, NthFiresExactlyOnce) {
  FaultInjector inj(Plan("copy-fail@nth:3"));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (inj.ShouldInject(FaultSite::kReplicationCopyFail)) {
      ++fired;
      EXPECT_EQ(inj.occurrences(FaultSite::kReplicationCopyFail), 3u);
    }
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(inj.fires(FaultSite::kReplicationCopyFail), 1u);
  EXPECT_EQ(inj.occurrences(FaultSite::kReplicationCopyFail), 10u);
}

TEST(FaultInjector, EveryKFiresPeriodically) {
  FaultInjector inj(Plan("frame-alloc@every:4"));
  std::string pattern;
  for (int i = 0; i < 12; ++i) {
    pattern += inj.ShouldInject(FaultSite::kFrameAllocTransient) ? 'X' : '.';
  }
  EXPECT_EQ(pattern, "...X...X...X");
}

TEST(FaultInjector, SitesCountIndependently) {
  FaultInjector inj(Plan("copy-fail@nth:1;frame-alloc@nth:2"));
  EXPECT_TRUE(inj.ShouldInject(FaultSite::kReplicationCopyFail));
  EXPECT_FALSE(inj.ShouldInject(FaultSite::kFrameAllocTransient));  // occurrence 1
  EXPECT_TRUE(inj.ShouldInject(FaultSite::kFrameAllocTransient));   // occurrence 2
  EXPECT_EQ(inj.total_fires(), 2u);
}

TEST(FaultInjector, AlwaysFiresEveryOccurrence) {
  FaultInjector inj(Plan("local-exhausted@always"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(inj.ShouldInject(FaultSite::kLocalExhausted));
  }
  // Other sites are untouched.
  EXPECT_FALSE(inj.ShouldInject(FaultSite::kReplicationCopyFail));
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed) {
  auto pattern = [](std::uint64_t seed) {
    FaultInjector inj(Plan("copy-fail@p:0.5:17"), seed);
    std::string out;
    for (int i = 0; i < 256; ++i) {
      out += inj.ShouldInject(FaultSite::kReplicationCopyFail) ? 'X' : '.';
    }
    return out;
  };
  EXPECT_EQ(pattern(1), pattern(1));  // same seed: bit-identical replay
  EXPECT_NE(pattern(1), pattern(2));  // different seed: different stream
  std::size_t fires = 0;
  for (char c : pattern(1)) {
    fires += c == 'X';
  }
  EXPECT_GT(fires, 64u);  // ~128 expected; loose bounds, deterministic anyway
  EXPECT_LT(fires, 192u);
}

TEST(FaultInjector, WindowUsesVirtualTime) {
  ProcClocks clocks(2);
  FaultInjector inj(Plan("frame-alloc@window:100:200"));
  inj.set_clocks(&clocks);
  EXPECT_FALSE(inj.ShouldInject(FaultSite::kFrameAllocTransient, 0));  // t=0
  clocks.ChargeUser(0, 150);
  EXPECT_TRUE(inj.ShouldInject(FaultSite::kFrameAllocTransient, 0));   // t=150
  EXPECT_FALSE(inj.ShouldInject(FaultSite::kFrameAllocTransient, 1));  // proc 1 at t=0
  clocks.ChargeUser(0, 100);
  EXPECT_FALSE(inj.ShouldInject(FaultSite::kFrameAllocTransient, 0));  // t=250, past end
}

// --- per-PageState exhaustion fallbacks -----------------------------------------------
//
// For every protocol state whose LOCAL action needs a fresh local frame, force the
// frame allocation to fail mid-operation (after cleanup has begun) and check the
// request degrades to the GLOBAL path: no abort, correct content, the page ends
// global-writable, and the degradation counters record it. Runs with the pager both
// off and on (the fallback must not depend on a pageout daemon existing).

class DegradeTest : public ::testing::TestWithParam<bool> {  // param: pager on?
 protected:
  ScriptedPolicy policy_;
  std::unique_ptr<Machine> machine_;
  Task* task_ = nullptr;
  VirtAddr va_ = 0;

  void SetUp() override {
    Machine::Options mo;
    mo.config.num_processors = 3;
    mo.config.global_pages = 16;
    mo.config.local_pages_per_proc = 8;
    mo.custom_policy = &policy_;
    mo.enable_pager = GetParam();
    machine_ = std::make_unique<Machine>(mo);
    task_ = machine_->CreateTask("degrade");
    va_ = task_->MapAnonymous("page", machine_->page_size());
  }

  // Drive the page to a state, then re-fault with `inj` armed and a LOCAL decision.
  void DegradedAccessFrom(FaultInjector* inj, AccessKind kind) {
    LogicalPage lp = machine_->DebugLogicalPage(*task_, va_);
    machine_->pmap().RemoveAll(lp);
    machine_->physical_memory().set_fault_injector(inj);
    machine_->numa_manager().set_fault_injector(inj);
    policy_.next = Placement::kLocal;
    if (kind == AccessKind::kFetch) {
      EXPECT_EQ(machine_->LoadWord(*task_, 0, va_), 0xbeefu);
    } else {
      machine_->StoreWord(*task_, 0, va_, 0xbeefu);
    }
    machine_->physical_memory().set_fault_injector(nullptr);
    machine_->numa_manager().set_fault_injector(nullptr);
  }

  void CheckDegraded() {
    EXPECT_EQ(machine_->PageInfoFor(*task_, va_).state, PageState::kGlobalWritable);
    EXPECT_EQ(machine_->DebugRead(*task_, va_), 0xbeefu);
    EXPECT_GE(machine_->stats().degraded_global_fallbacks, 1u);
    CheckMachineInvariants(*machine_);
  }
};

TEST_P(DegradeTest, ReadOnlyReplicaRequest) {
  policy_.next = Placement::kLocal;
  machine_->StoreWord(*task_, 1, va_, 0xbeef);
  (void)machine_->LoadWord(*task_, 1, va_);  // still LW on 1; RO via global store first
  policy_.next = Placement::kGlobal;
  (void)machine_->LoadWord(*task_, 1, va_);  // GW
  policy_.next = Placement::kLocal;
  (void)machine_->LoadWord(*task_, 1, va_);  // RO with a replica on node 1

  FaultInjector inj(Plan("frame-alloc@always"));
  DegradedAccessFrom(&inj, AccessKind::kFetch);
  CheckDegraded();
}

TEST_P(DegradeTest, GlobalWritablePage) {
  policy_.next = Placement::kGlobal;
  machine_->StoreWord(*task_, 1, va_, 0xbeef);  // GW

  FaultInjector inj(Plan("frame-alloc@always"));
  DegradedAccessFrom(&inj, AccessKind::kFetch);
  CheckDegraded();
}

TEST_P(DegradeTest, LocalWritableOnAnotherNode) {
  policy_.next = Placement::kLocal;
  machine_->StoreWord(*task_, 1, va_, 0xbeef);  // LW on node 1

  FaultInjector inj(Plan("frame-alloc@always"));
  DegradedAccessFrom(&inj, AccessKind::kStore);
  CheckDegraded();
  // The owner's content survived the sync&flush that preceded the failed copy.
  EXPECT_EQ(machine_->DebugRead(*task_, va_), 0xbeefu);
}

TEST_P(DegradeTest, RemoteHomedPage) {
  policy_.next = Placement::kRemoteHome;
  machine_->StoreWord(*task_, 1, va_, 0xbeef);  // homed at node 1
  ASSERT_EQ(machine_->PageInfoFor(*task_, va_).state, PageState::kRemoteHomed);

  FaultInjector inj(Plan("frame-alloc@always"));
  DegradedAccessFrom(&inj, AccessKind::kFetch);
  CheckDegraded();
}

TEST_P(DegradeTest, ReplicationCopyFailure) {
  policy_.next = Placement::kGlobal;
  machine_->StoreWord(*task_, 1, va_, 0xbeef);  // GW

  FaultInjector inj(Plan("copy-fail@always"));
  DegradedAccessFrom(&inj, AccessKind::kFetch);
  EXPECT_EQ(machine_->DebugRead(*task_, va_), 0xbeefu);
  EXPECT_GE(machine_->stats().degraded_copy_failures, 1u);
  EXPECT_GE(machine_->stats().degraded_global_fallbacks, 1u);
  // The frame allocated for the failed copy was returned, not leaked.
  EXPECT_EQ(machine_->physical_memory().FreeLocalFrames(0), 8u);
  CheckMachineInvariants(*machine_);
}

TEST_P(DegradeTest, PrecheckExhaustionUsesTheOldGracefulPath) {
  // kLocalExhausted fires at the placement *precheck*, before any cleanup: that is
  // the paper's original local-memory-full fallback, counted as local_alloc_failures
  // and NOT as a mid-operation degradation.
  FaultInjector inj(Plan("local-exhausted@always"));
  machine_->numa_manager().set_fault_injector(&inj);
  policy_.next = Placement::kLocal;
  machine_->StoreWord(*task_, 0, va_, 0xbeef);
  machine_->numa_manager().set_fault_injector(nullptr);

  EXPECT_EQ(machine_->PageInfoFor(*task_, va_).state, PageState::kGlobalWritable);
  EXPECT_EQ(machine_->DebugRead(*task_, va_), 0xbeefu);
  EXPECT_GE(machine_->stats().local_alloc_failures, 1u);
  EXPECT_EQ(machine_->stats().degraded_global_fallbacks, 0u);
  CheckMachineInvariants(*machine_);
}

INSTANTIATE_TEST_SUITE_P(PageoutOffAndOn, DegradeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "PagerOn" : "PagerOff";
                         });

// --- pool exhaustion and victim contention under the pager ----------------------------

TEST(PagerDegradeTest, InjectedPoolExhaustionIsAbsorbedByRetry) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 8;
  mo.enable_pager = true;
  mo.fault_plan = Plan("pool-exhausted@every:3");
  Machine machine(mo);
  Task* task = machine.CreateTask("pool");
  VirtAddr va = task->MapAnonymous("data", 32 * machine.page_size());

  // Touch 32 pages through an 8-page pool: every allocation beyond the pool drives a
  // pageout, and every 3rd allocation is additionally injected to fail first.
  for (std::uint32_t p = 0; p < 32; ++p) {
    machine.StoreWord(*task, 0, va + static_cast<VirtAddr>(p) * machine.page_size(), p + 7);
  }
  for (std::uint32_t p = 0; p < 32; ++p) {
    EXPECT_EQ(machine.LoadWord(*task, 1, va + static_cast<VirtAddr>(p) * machine.page_size()),
              p + 7);
  }
  ASSERT_NE(machine.fault_injector(), nullptr);
  EXPECT_GT(machine.fault_injector()->fires(FaultSite::kGlobalPoolExhausted), 0u);
  EXPECT_GT(machine.pager()->stats().pageouts, 0u);
  machine.numa_manager().VerifyAllInvariants();
}

TEST(PagerDegradeTest, VictimContentionSparesPagesButEvictionProceeds) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 8;
  mo.enable_pager = true;
  mo.fault_plan = Plan("victim-contention@every:2");
  Machine machine(mo);
  Task* task = machine.CreateTask("victim");
  VirtAddr va = task->MapAnonymous("data", 24 * machine.page_size());

  for (std::uint32_t p = 0; p < 24; ++p) {
    machine.StoreWord(*task, 0, va + static_cast<VirtAddr>(p) * machine.page_size(), p + 3);
  }
  for (std::uint32_t p = 0; p < 24; ++p) {
    EXPECT_EQ(machine.LoadWord(*task, 0, va + static_cast<VirtAddr>(p) * machine.page_size()),
              p + 3);
  }
  EXPECT_GT(machine.fault_injector()->fires(FaultSite::kPageoutVictimContention), 0u);
  EXPECT_GT(machine.pager()->stats().second_chances, 0u);  // spared victims were requeued
  EXPECT_GT(machine.pager()->stats().pageouts, 0u);        // but eviction still made progress
  machine.numa_manager().VerifyAllInvariants();
}

// --- chaos grammar --------------------------------------------------------------------

TEST(ChaosPlan, FormatParseRoundTrip) {
  const char* kCanonical =
      "drain-mem@2:30000000:60000000:0;stall-proc@1:36000000:56000000;"
      "slow-link@0:1000:2000:3000";
  FaultPlan plan = Plan(kCanonical);
  ASSERT_EQ(plan.chaos.size(), 3u);
  EXPECT_TRUE(plan.schedules.empty());
  EXPECT_EQ(plan.Format(), kCanonical);
  EXPECT_EQ(Plan(plan.Format()).Format(), kCanonical);

  EXPECT_EQ(plan.chaos[0].kind, ChaosKind::kDrainMem);
  EXPECT_EQ(plan.chaos[0].node, 2u);
  EXPECT_EQ(plan.chaos[0].t_begin, 30'000'000);
  EXPECT_EQ(plan.chaos[0].t_end, 60'000'000);
  EXPECT_EQ(plan.chaos[0].permille, 0u);
  EXPECT_EQ(plan.chaos[1].kind, ChaosKind::kStallProc);
  EXPECT_EQ(plan.chaos[2].kind, ChaosKind::kSlowLink);
  EXPECT_EQ(plan.chaos[2].permille, 3000u);
}

TEST(ChaosPlan, DrainPermilleIsOptionalAndCanonicalizes) {
  // Omitted permille = hot-remove; Format always writes it back explicitly.
  FaultPlan plan = Plan("drain-mem@1:10:20");
  ASSERT_EQ(plan.chaos.size(), 1u);
  EXPECT_EQ(plan.chaos[0].permille, 0u);
  EXPECT_EQ(plan.Format(), "drain-mem@1:10:20:0");
  EXPECT_EQ(Plan("drain-mem@1:10:20:250").Format(), "drain-mem@1:10:20:250");
}

TEST(ChaosPlan, UnderscoreNamesAreAliases) {
  const char* kAliased = "drain_mem@1:10:20:500;stall_proc@0:5:9;slow_link@2:1:2:1500";
  const char* kCanonical = "drain-mem@1:10:20:500;stall-proc@0:5:9;slow-link@2:1:2:1500";
  EXPECT_EQ(Plan(kAliased).Format(), kCanonical);
}

TEST(ChaosPlan, SchedulesAndChaosMixInOnePlan) {
  FaultPlan plan = Plan("frame-alloc@nth:2;drain-mem@0:10:20:0;copy-fail@always");
  EXPECT_EQ(plan.schedules.size(), 2u);
  EXPECT_EQ(plan.chaos.size(), 1u);
  // Format groups schedules first, then chaos; the grouped form still round-trips.
  EXPECT_EQ(plan.Format(), "frame-alloc@nth:2;copy-fail@always;drain-mem@0:10:20:0");
  EXPECT_EQ(Plan(plan.Format()).Format(), plan.Format());
}

TEST(ChaosPlan, RejectsMalformedEvents) {
  const char* kBad[] = {
      "drain-mem@16:10:20",       // node >= kMaxProcessors
      "drain-mem@x:10:20",        // non-numeric node
      "drain-mem@1:20:20",        // empty window (T1 <= T0)
      "drain-mem@1:20:10",        // inverted window
      "drain-mem@1:10:20:1001",   // residual permille > 1000
      "stall-proc@1:10",          // missing T1
      "slow-link@1:10:20",        // slow-link without its multiplier
      "slow-link@1:10:20:999",    // multiplier < 1000 (a speedup, not a degradation)
      "kill-node@1",              // missing the death timestamp
      "kill-node@1:10:20",        // a kill has no recovery window: NODE:T0 only
      "kill-node@16:10",          // node >= kMaxProcessors
      "corrupt-page@1:10",        // missing T1
      "corrupt-page@1:20:10",     // inverted window
      "corrupt-page@1:10:20:0",   // permille 0 corrupts nothing: not a valid event
      "corrupt-page@1:10:20:1001",  // permille > 1000
  };
  for (const char* text : kBad) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(text, &plan, &error)) << text;
    EXPECT_NE(error.find(std::string("'") + text + "'"), std::string::npos)
        << text << ": error does not quote the event: " << error;
  }
}

// Satellite contract: a plan naming an unknown site must list every valid site and
// chaos name, so a typo is fixable straight from the error text. Table-driven over
// representative misspellings of both vocabularies.
TEST(ChaosPlan, UnknownNameErrorListsEveryValidName) {
  const char* kTypos[] = {
      "no-such-site@always",
      "drain-men@1:10:20",
      "stallproc@1:10:20",
      "slow-links@1:10:20:2000",
      "local-exhau@every:3",
  };
  const char* kAllNames[] = {
      "local-exhausted", "pool-exhausted", "victim-contention", "frame-alloc",
      "copy-fail",       "skip-sync",      "skip-move-count",   "drain-mem",
      "stall-proc",      "slow-link",      "kill-node",         "corrupt-page",
  };
  for (const char* text : kTypos) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(text, &plan, &error)) << text;
    for (const char* name : kAllNames) {
      EXPECT_NE(error.find(name), std::string::npos)
          << text << ": error must list valid name '" << name << "': " << error;
    }
  }
  // The helper the tools print on bad --plan/--chaos input carries the same list.
  std::string names = ValidPlanNames();
  for (const char* name : kAllNames) {
    EXPECT_NE(names.find(name), std::string::npos) << name;
  }
}

TEST(ChaosPlan, PermanentEventsRoundTripAndCanonicalize) {
  FaultPlan plan = Plan("kill-node@2:30000000;corrupt-page@1:10:20:250");
  ASSERT_EQ(plan.chaos.size(), 2u);
  EXPECT_EQ(plan.chaos[0].kind, ChaosKind::kKillNode);
  EXPECT_EQ(plan.chaos[0].node, 2u);
  EXPECT_EQ(plan.chaos[0].t_begin, 30'000'000);
  EXPECT_EQ(plan.chaos[0].t_end, 30'000'000);  // one-shot: the window collapses to T0
  EXPECT_EQ(plan.chaos[1].kind, ChaosKind::kCorruptPage);
  EXPECT_EQ(plan.chaos[1].permille, 250u);
  EXPECT_EQ(plan.Format(), "kill-node@2:30000000;corrupt-page@1:10:20:250");
  EXPECT_EQ(Plan(plan.Format()).Format(), plan.Format());

  // Omitted corruption density defaults to 100 (10% of resident frames) and Format
  // always writes it back explicitly.
  EXPECT_EQ(Plan("corrupt-page@1:10:20").Format(), "corrupt-page@1:10:20:100");

  // Only the permanent kinds arm the durability subsystem.
  EXPECT_TRUE(plan.has_durable_chaos());
  EXPECT_TRUE(Plan("corrupt-page@0:10:20").has_durable_chaos());
  EXPECT_FALSE(Plan("drain-mem@1:10:20;slow-link@0:1:2:2000").has_durable_chaos());
  EXPECT_FALSE(Plan("frame-alloc@nth:2").has_durable_chaos());
}

// --- chaos controller arming ----------------------------------------------------------

TEST(ChaosController, ArmedOnlyWhenThePlanCarriesChaosEvents) {
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.fault_plan = Plan("drain-mem@1:10000:20000:0");
  Machine with_chaos(mo);
  ASSERT_NE(with_chaos.chaos(), nullptr);
  EXPECT_EQ(with_chaos.chaos()->num_events(), 1u);
  EXPECT_FALSE(with_chaos.chaos()->has_slow_link());
  // A chaos-only plan arms no site injector; a schedules-only plan arms no chaos.
  EXPECT_EQ(with_chaos.fault_injector(), nullptr);

  mo.fault_plan = Plan("frame-alloc@nth:2");
  Machine schedules_only(mo);
  EXPECT_EQ(schedules_only.chaos(), nullptr);
  ASSERT_NE(schedules_only.fault_injector(), nullptr);

  mo.fault_plan = Plan("slow-link@0:10:20:2000");
  Machine slow(mo);
  ASSERT_NE(slow.chaos(), nullptr);
  EXPECT_TRUE(slow.chaos()->has_slow_link());
}

TEST(ChaosController, DurabilityArmedOnlyWhenThePlanCarriesPermanentChaos) {
  // Transient chaos arms the controller but must NOT build the durability pair:
  // disarmed machines keep the exact pre-durability code paths and counters.
  Machine::Options mo;
  mo.config.num_processors = 4;
  mo.fault_plan = Plan("drain-mem@1:10000:20000:0");
  Machine transient(mo);
  ASSERT_NE(transient.chaos(), nullptr);
  EXPECT_EQ(transient.replica_manager(), nullptr);
  EXPECT_EQ(transient.recovery(), nullptr);

  mo.fault_plan = Plan("kill-node@1:900000000000");
  Machine durable(mo);
  ASSERT_NE(durable.replica_manager(), nullptr);
  ASSERT_NE(durable.recovery(), nullptr);
  EXPECT_FALSE(durable.recovery()->has_dead_nodes());
  EXPECT_EQ(durable.recovery()->live_processors(), 4);
  EXPECT_EQ(durable.replica_manager()->open_journals(), 0u);

  mo.fault_plan = Plan("corrupt-page@0:10000:20000");
  Machine scrub(mo);
  EXPECT_NE(scrub.replica_manager(), nullptr);
  EXPECT_NE(scrub.recovery(), nullptr);
}

TEST(ChaosController, EventsOnNonexistentNodesAreDropped) {
  // A plan written for a larger machine replays harmlessly on a smaller one.
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.fault_plan = Plan("drain-mem@7:10:20:0;stall-proc@1:10:20");
  Machine machine(mo);
  ASSERT_NE(machine.chaos(), nullptr);
  EXPECT_EQ(machine.chaos()->num_events(), 1u);
}

TEST(ChaosController, SlowLinkDilatesOnlyTheNamedProcessorInsideTheWindow) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.fault_plan = Plan("slow-link@1:1000:2000:3000");
  Machine machine(mo);
  ASSERT_NE(machine.chaos(), nullptr);
  // Before activation every processor is at identity.
  EXPECT_EQ(machine.chaos()->AdjustCost(0, 100), 100);
  EXPECT_EQ(machine.chaos()->AdjustCost(1, 100), 100);
  machine.chaos()->Advance(1500, 0);  // crosses T0: window active on proc 1
  EXPECT_EQ(machine.chaos()->AdjustCost(0, 100), 100);
  EXPECT_EQ(machine.chaos()->AdjustCost(1, 100), 300);
  machine.chaos()->Advance(2500, 0);  // crosses T1: back to identity
  EXPECT_EQ(machine.chaos()->AdjustCost(1, 100), 100);
  EXPECT_EQ(machine.stats().chaos_events, 2u);  // activation + recovery
}

// --- zero cost when unarmed -----------------------------------------------------------

TEST(FaultInjection, UnarmedMachineHasNoInjectorAndNoDegradation) {
  Machine::Options mo;
  mo.config.num_processors = 2;
  mo.config.global_pages = 16;
  Machine machine(mo);
  EXPECT_EQ(machine.fault_injector(), nullptr);
  Task* task = machine.CreateTask("clean");
  VirtAddr va = task->MapAnonymous("data", 4 * machine.page_size());
  for (int p = 0; p < 4; ++p) {
    machine.StoreWord(*task, 0, va + static_cast<VirtAddr>(p) * machine.page_size(), p);
    (void)machine.LoadWord(*task, 1, va + static_cast<VirtAddr>(p) * machine.page_size());
  }
  const MachineStats& s = machine.stats();
  EXPECT_EQ(s.degraded_global_fallbacks, 0u);
  EXPECT_EQ(s.degraded_copy_failures, 0u);
  EXPECT_EQ(s.degraded_pool_retries, 0u);
  EXPECT_EQ(s.degraded_oom_faults, 0u);
  // The same zero-cost contract for chaos: no controller, counters exactly zero.
  EXPECT_EQ(machine.chaos(), nullptr);
  EXPECT_EQ(s.chaos_events, 0u);
  EXPECT_EQ(s.evacuated_pages, 0u);
}

}  // namespace
}  // namespace ace
