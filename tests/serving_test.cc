// Tests for the serving workload (src/serving): Zipfian client model shape and
// determinism, open-loop arrival reproducibility, latency histogram/reservoir
// mechanics, byte-identical serving sweeps across worker counts and TLB settings,
// live-feed request counters, and the committed serving baseline's structure.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/app.h"
#include "src/machine/machine.h"
#include "src/metrics/experiment.h"
#include "src/metrics/sweep/matrix.h"
#include "src/metrics/sweep/report.h"
#include "src/metrics/sweep/runner.h"
#include "src/obs/json_lite.h"
#include "src/obs/live_stream.h"
#include "src/obs/sampler.h"
#include "src/serving/latency.h"
#include "src/serving/workload.h"
#include "src/serving/zipf.h"

namespace ace {
namespace {

// --- client model ------------------------------------------------------------------

TEST(ZipfSampler, SkewConcentratesMassOnTopRanks) {
  constexpr std::uint32_t kKeys = 128;
  constexpr int kDraws = 20000;
  auto top8_share = [](double skew) {
    ZipfSampler sampler(kKeys, skew);
    ServingRng rng(42);
    int top = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (sampler.Sample(rng) < 8) {
        ++top;
      }
    }
    return static_cast<double>(top) / kDraws;
  };
  double uniform = top8_share(0.0);
  double mild = top8_share(0.9);
  double heavy = top8_share(1.4);
  // Uniform: 8/128 = 6.25% expected. Skew must strictly concentrate.
  EXPECT_NEAR(uniform, 8.0 / 128.0, 0.02);
  EXPECT_GT(mild, uniform + 0.2);
  EXPECT_GT(heavy, mild + 0.05);
}

TEST(ZipfSampler, DrawsCoverTheFullRangeAndAreDeterministic) {
  ZipfSampler sampler(64, 0.6);
  ServingRng a(7), b(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 8000; ++i) {
    std::uint32_t ra = sampler.Sample(a);
    ASSERT_EQ(ra, sampler.Sample(b)) << "same seed must give the same draw stream";
    ASSERT_LT(ra, 64u);
    seen.insert(ra);
  }
  // Even the tail ranks of a mildly skewed 64-key space appear in 8000 draws.
  EXPECT_EQ(seen.size(), 64u);
}

TEST(ServingWorkload, SameSeedReproducesByteIdenticalTraces) {
  ServingParams params;
  params.requests = 2000;
  ServingWorkload a = BuildServingWorkload(params, 4);
  ServingWorkload b = BuildServingWorkload(params, 4);
  ASSERT_EQ(a.total_requests, b.total_requests);
  ASSERT_EQ(a.queues.size(), b.queues.size());
  for (std::size_t p = 0; p < a.queues.size(); ++p) {
    for (std::size_t t = 0; t < a.queues[p].size(); ++t) {
      ASSERT_EQ(a.queues[p][t].size(), b.queues[p][t].size());
      for (std::size_t i = 0; i < a.queues[p][t].size(); ++i) {
        const ServingRequest& ra = a.queues[p][t][i];
        const ServingRequest& rb = b.queues[p][t][i];
        ASSERT_EQ(ra.arrival_ns, rb.arrival_ns);
        ASSERT_EQ(ra.key, rb.key);
        ASSERT_EQ(ra.tenant, rb.tenant);
        ASSERT_EQ(ra.is_put, rb.is_put);
        ASSERT_EQ(ra.remote, rb.remote);
      }
    }
  }

  ServingParams other = params;
  other.seed = params.seed + 1;
  ServingWorkload c = BuildServingWorkload(other, 4);
  bool differs = false;
  for (std::size_t p = 0; p < a.queues.size() && !differs; ++p) {
    for (std::size_t t = 0; t < a.queues[p].size() && !differs; ++t) {
      differs = a.queues[p][t].size() != c.queues[p][t].size();
      for (std::size_t i = 0; !differs && i < a.queues[p][t].size(); ++i) {
        differs = a.queues[p][t][i].arrival_ns != c.queues[p][t][i].arrival_ns ||
                  a.queues[p][t][i].key != c.queues[p][t][i].key;
      }
    }
  }
  EXPECT_TRUE(differs) << "a different seed must draw a different client population";
}

TEST(ServingWorkload, OpenLoopArrivalsAreOrderedAndAccounted) {
  ServingParams params;
  params.tenants = 4;
  params.phases = 3;
  params.requests = 3000;
  const int kThreads = 5;
  ServingWorkload wl = BuildServingWorkload(params, kThreads);

  std::uint64_t total = 0, puts = 0, remotes = 0, last_arrival = 0;
  ASSERT_EQ(wl.queues.size(), static_cast<std::size_t>(params.phases));
  for (int phase = 0; phase < params.phases; ++phase) {
    ASSERT_EQ(wl.queues[phase].size(), static_cast<std::size_t>(kThreads));
    for (int tid = 0; tid < kThreads; ++tid) {
      std::uint64_t prev = 0;
      for (const ServingRequest& r : wl.queues[phase][tid]) {
        EXPECT_GE(r.arrival_ns, prev) << "per-shard queues must be arrival-ordered";
        prev = r.arrival_ns;
        last_arrival = std::max(last_arrival, r.arrival_ns);
        ASSERT_LT(static_cast<int>(r.tenant), params.tenants);
        ASSERT_LT(r.key, params.keys_per_tenant);
        total++;
        puts += r.is_put;
        remotes += r.remote;
        const int home = ServingHomeShard(r.tenant, phase, kThreads);
        if (r.remote) {
          EXPECT_EQ(r.is_put, 0) << "only GETs route off-home";
          EXPECT_NE(tid, home);
        } else {
          EXPECT_EQ(tid, home) << "non-remote requests execute on the home shard";
        }
      }
    }
  }
  EXPECT_EQ(total, wl.total_requests);
  EXPECT_EQ(total, params.requests);
  EXPECT_EQ(puts, wl.puts);
  EXPECT_EQ(remotes, wl.remote_gets);
  EXPECT_EQ(last_arrival, wl.horizon_ns);
  // The op mix tracks its permille knobs loosely (it is a random draw).
  EXPECT_GT(puts, params.requests / 5);
  EXPECT_LT(puts, params.requests / 2);
  EXPECT_GT(remotes, 0u);
}

TEST(ServingWorkload, SingleShardHasNoRemoteRouting) {
  ServingParams params;
  params.requests = 600;
  ServingWorkload wl = BuildServingWorkload(params, 1);
  EXPECT_EQ(wl.remote_gets, 0u);
}

// --- latency instruments -----------------------------------------------------------

TEST(LatencyHistogram, BucketsBoundAndPercentilesAreExactRanks) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  // Every recorded value is <= its bucket's upper bound (the percentile read-out).
  for (std::uint64_t ns : {0ull, 1ull, 31ull, 32ull, 1000ull, 123456ull, 987654321ull}) {
    EXPECT_LE(ns, LatencyHistogram::BucketUpperNs(LatencyHistogram::BucketIndex(ns)))
        << ns;
  }
  for (std::uint64_t ns = 1; ns <= 100; ++ns) {
    h.Record(ns * 1000);
  }
  EXPECT_EQ(h.count(), 100u);
  // Rank semantics: p50 covers the 50th smallest (50us), p99 the 99th (99us);
  // answers are bucket upper bounds, so within one sub-bucket width (~3.1%).
  EXPECT_NEAR(static_cast<double>(h.PercentileNs(50)), 50e3, 50e3 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.PercentileNs(99)), 99e3, 99e3 * 0.04);
  EXPECT_EQ(h.max_ns(), 100'000u);

  LatencyHistogram other;
  other.Record(7);
  other.Merge(h);
  EXPECT_EQ(other.count(), 101u);
  EXPECT_EQ(other.sum_ns(), h.sum_ns() + 7);
}

TEST(LatencyReservoir, SeededSamplingIsDeterministic) {
  LatencyReservoir a(99), b(99);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    a.Record(i * 17);
    b.Record(i * 17);
  }
  EXPECT_EQ(a.SampleQuantileNs(0.5), b.SampleQuantileNs(0.5));
  EXPECT_EQ(a.SampleQuantileNs(0.99), b.SampleQuantileNs(0.99));
  // The sampled median of 0..5000*17 sits near the true median.
  double p50 = static_cast<double>(a.SampleQuantileNs(0.5));
  EXPECT_GT(p50, 2500.0 * 17 * 0.8);
  EXPECT_LT(p50, 2500.0 * 17 * 1.2);
}

// --- end-to-end determinism --------------------------------------------------------

// The acceptance property from ISSUE: the serving suite serializes byte-identically
// whether dispatched on 1 worker or 8 (extends the sweep engine's guarantee to the
// latency metrics).
TEST(ServingSweep, ParallelDispatchDoesNotChangeLatencyMetrics) {
  Suite suite = MakeSuite("serving");
  SweepOptions serial;
  serial.workers = 1;
  SweepResult r1 = RunSweep(suite.name, suite.cells, serial);
  SweepOptions parallel;
  parallel.workers = 8;
  SweepResult r8 = RunSweep(suite.name, suite.cells, parallel);
  EXPECT_EQ(SerializeSweep(r1, /*include_host=*/false),
            SerializeSweep(r8, /*include_host=*/false));
  EXPECT_TRUE(r1.AllOk());

  std::string error;
  EXPECT_TRUE(ValidateSweepJson(SerializeSweep(r1, true), &error)) << error;

  // Serving cells round-trip through the forked-cell wire format (serialize +
  // parse + key cross-check), the path --isolate and checkpoint/resume use.
  CellResult forked = RunCellForked(suite.cells[0], MachineConfig{});
  EXPECT_TRUE(forked.ok) << forked.failure_detail;
  EXPECT_EQ(forked.cell.Key(), suite.cells[0].Key());
  EXPECT_GT(forked.MetricOr("lat_p99_ms", 0.0), 0.0);
}

// Latency percentiles are virtual-time-derived, so the software-TLB fast path must
// not move them by a nanosecond.
TEST(ServingSweep, TlbOnOffLatenciesAreByteIdentical) {
  std::unique_ptr<App> app = CreateAppByName("Serving");
  ASSERT_NE(app, nullptr);
  ExperimentOptions options;
  options.num_threads = 4;
  options.config.num_processors = 4;
  options.scale = 0.25;
  options.serving.tenants = 4;
  options.serving.zipf_skew = 1.1;

  options.enable_tlb = true;
  PlacementRun on = RunPlacement(*app, options, PolicySpec::MoveLimit(4), 4, 4);
  options.enable_tlb = false;
  PlacementRun off = RunPlacement(*app, options, PolicySpec::MoveLimit(4), 4, 4);

  EXPECT_TRUE(on.app.ok);
  EXPECT_TRUE(off.app.ok);
  EXPECT_GT(on.tlb_hits + on.tlb_batched_refs, 0u) << "fast path must engage";
  EXPECT_EQ(off.tlb_hits + off.tlb_fills + off.tlb_batched_refs, 0u);
  EXPECT_EQ(on.user_sec, off.user_sec);
  EXPECT_EQ(on.system_sec, off.system_sec);
  ASSERT_EQ(on.app.metrics.size(), off.app.metrics.size());
  for (std::size_t i = 0; i < on.app.metrics.size(); ++i) {
    EXPECT_EQ(on.app.metrics[i].first, off.app.metrics[i].first);
    EXPECT_EQ(on.app.metrics[i].second, off.app.metrics[i].second) << on.app.metrics[i].first;
  }
}

// The live feed's request counters: cumulative, monotone, and equal to the app's
// own request accounting at the end of the run.
TEST(ServingLive, RequestCountersReachTheLiveSample) {
  std::unique_ptr<App> app = CreateAppByName("Serving");
  ASSERT_NE(app, nullptr);
  Machine::Options mo;
  mo.config.num_processors = 2;
  Machine machine(mo);
  AppConfig cfg;
  cfg.num_threads = 2;
  cfg.serving.requests = 256;
  AppResult result = app->Run(machine, cfg);
  ASSERT_TRUE(result.ok) << result.detail;

  LiveSample sample;
  machine.CaptureLiveSample(&sample);
  EXPECT_EQ(sample.app_requests, 256u);
  EXPECT_GT(sample.app_req_lat_ns, 0u);

  // The flat counter vocabulary carries both, in the declared slots.
  std::uint64_t flat[kNumLiveCounters];
  FlattenLiveCounters(sample, flat);
  EXPECT_EQ(flat[kLcRequests], sample.app_requests);
  EXPECT_EQ(flat[kLcReqLatNs], sample.app_req_lat_ns);
  EXPECT_EQ(std::string(LiveCounterKey(kLcRequests)), "requests");
  EXPECT_EQ(std::string(LiveCounterKey(kLcReqLatNs)), "req_lat_ns");
}

// --- golden file -------------------------------------------------------------------

// The committed serving baseline mirrors SweepGolden: schema-valid, cell set equal
// to the current serving suite, counters gated exactly, latencies with tolerance.
TEST(ServingGolden, CommittedServingBaselineIsValidAndComplete) {
  std::ifstream in(std::string(ACE_BASELINE_DIR) + "/BENCH_serving_smoke.json");
  ASSERT_TRUE(in) << "bench/baselines/BENCH_serving_smoke.json missing";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();

  std::string error;
  ASSERT_TRUE(ValidateSweepJson(json, &error)) << error;

  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.StringOr("suite", ""), "serving");
  ASSERT_NE(doc.Find("tolerances"), nullptr);
  ASSERT_NE(doc.Find("tolerance_notes"), nullptr);
  const JsonValue* tolerances = doc.Find("tolerances");
  EXPECT_EQ(tolerances->NumberOr("requests", -1.0), 0.0)
      << "request counters are deterministic and must be gated exactly";
  EXPECT_EQ(tolerances->NumberOr("puts", -1.0), 0.0);

  Suite suite = MakeSuite("serving");
  std::set<std::string> expected;
  for (const SweepCell& cell : suite.cells) {
    expected.insert(cell.Key());
  }
  std::set<std::string> in_baseline;
  for (const JsonValue& cell : doc.Find("cells")->items) {
    in_baseline.insert(cell.StringOr("key", ""));
    EXPECT_NE(cell.Find("metrics")->Find("lat_p50_ms"), nullptr);
    EXPECT_NE(cell.Find("metrics")->Find("lat_p99_ms"), nullptr);
  }
  EXPECT_EQ(expected, in_baseline)
      << "serving suite and its baseline diverged; regenerate with "
         "ace_bench --suite serving --no-host --out bench/baselines/"
         "BENCH_serving_smoke.json (keep the tolerance members)";
}

}  // namespace
}  // namespace ace
