// ace_soak — randomized fault-injection soak harness.
//
// Each seed derives one run: an application from the suite, a machine shape
// (threads, policy, threshold, scheduler, pager on/off) and a generated fault plan
// of 1–3 schedules over the graceful-degradation fault sites (src/inject). The run
// executes in a forked child so that an ACE_CHECK abort — a degradation path that
// crashed instead of degrading — is caught as a violation instead of killing the
// harness. After the application finishes, the child checks:
//   * the application's own result verification (every app computes and checks a
//     real result through simulated memory),
//   * the full protocol invariant sweep (VerifyAllInvariants; aborts on violation),
//   * counter identities that must survive any injection: page_syncs <= page_copies
//     + zero_fills, pageins <= pageouts, measured alpha in [0, 1],
//   * on clean runs (every 8th seed carries an empty plan), that every degradation
//     counter stayed zero — injection must be zero-cost when unarmed.
//
// A failing run's plan is shrunk to a minimal subset of schedules that still fails
// and printed as a replayable `ace_soak --replay ...` command line (also written to
// --repro-out for CI artifact upload). --replay executes in-process, so an abort
// produces a debuggable stack instead of a harness report.
//
// Generated plans are constrained to stay *survivable*: the sites with graceful
// fallbacks (local-exhausted, frame-alloc, copy-fail) may fire at any rate, while
// pool-exhausted and victim-contention are kept transient — a plan that permanently
// empties the page pool makes the application legitimately run out of memory, which
// is not a robustness bug. The protocol-mutation sites (skip-sync, skip-move-count)
// are excluded: they corrupt results by design and belong to ace_conform.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/inject/fault_plan.h"
#include "src/machine/machine.h"
#include "src/threads/runtime.h"

namespace {

// SplitMix64 (same generator the differ uses for operation streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t Below(std::uint32_t n) { return static_cast<std::uint32_t>(Next() % n); }

 private:
  std::uint64_t state_;
};

// Everything needed to rebuild one soak run exactly.
struct RunSpec {
  std::string app = "IMatMult";
  int threads = 4;
  double scale = 0.25;
  int variant = 0;
  std::string policy = "move-limit";
  int threshold = 4;
  bool migrating = false;
  bool pager = false;
  std::uint32_t global_pages = 4096;
  ace::FaultPlan plan;
  std::uint64_t fault_seed = 0;
};

ace::PolicySpec ParsePolicy(const std::string& name, int threshold) {
  if (name == "move-limit") {
    return ace::PolicySpec::MoveLimit(threshold);
  }
  if (name == "all-global") {
    return ace::PolicySpec::AllGlobal();
  }
  if (name == "all-local") {
    return ace::PolicySpec::AllLocal();
  }
  if (name == "reconsider") {
    return ace::PolicySpec::Reconsider(threshold, 50'000'000);
  }
  if (name == "remote-home") {
    return ace::PolicySpec::RemoteHome(threshold);
  }
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

ace::FaultSchedule GenSchedule(Rng& rng, bool pager) {
  using ace::FaultSite;
  static const FaultSite kGraceful[] = {FaultSite::kLocalExhausted,
                                        FaultSite::kFrameAllocTransient,
                                        FaultSite::kReplicationCopyFail};
  ace::FaultSchedule s;
  // Victim contention only has a consumer when the pageout daemon runs, and pool
  // exhaustion is only survivable there (the evict-and-retry loop needs a pager; on a
  // pager-less machine an empty pool is architecturally fatal to the faulting app).
  std::uint32_t pick = rng.Below(pager ? 5 : 3);
  bool transient_only = false;
  if (pick < 3) {
    s.site = kGraceful[pick];
  } else if (pick == 3) {
    s.site = FaultSite::kGlobalPoolExhausted;
    transient_only = true;
  } else {
    s.site = FaultSite::kPageoutVictimContention;
    transient_only = true;
  }
  // Sites without a graceful fallback of their own must fire transiently — a retry
  // after the injected miss has to be able to succeed (never kAlways, every-K >= 2,
  // low probabilities) or the app legitimately runs out of memory.
  switch (rng.Below(transient_only ? 3u : 4u)) {
    case 0:
      s.kind = ace::FaultSchedule::Kind::kNth;
      s.n = 1 + rng.Below(50);
      break;
    case 1:
      s.kind = ace::FaultSchedule::Kind::kEveryK;
      s.n = transient_only ? 2 + rng.Below(7) : 1 + rng.Below(8);
      break;
    case 2: {
      s.kind = ace::FaultSchedule::Kind::kProbability;
      double cap = s.site == ace::FaultSite::kGlobalPoolExhausted
                       ? 0.05
                       : (s.site == ace::FaultSite::kPageoutVictimContention ? 0.2 : 0.3);
      s.probability = cap * static_cast<double>(1 + rng.Below(100)) / 100.0;
      s.seed = rng.Next() & 0xffff;
      break;
    }
    default:
      s.kind = ace::FaultSchedule::Kind::kAlways;
      break;
  }
  return s;
}

RunSpec DeriveRun(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  RunSpec spec;
  spec.fault_seed = seed;
  static const char* kApps[] = {"ParMult", "Gfetch",  "IMatMult", "Primes1",
                                "Primes2", "Primes3", "FFT",      "PlyTrace"};
  spec.app = kApps[rng.Below(8)];
  spec.threads = 2 + static_cast<int>(rng.Below(5));
  spec.scale = 0.25;
  if (spec.app == "Primes2" || spec.app == "PlyTrace") {
    spec.variant = static_cast<int>(rng.Below(2));
  }
  static const char* kPolicies[] = {"move-limit", "remote-home", "all-global", "all-local",
                                    "reconsider"};
  spec.policy = kPolicies[rng.Below(5)];
  spec.threshold = 1 + static_cast<int>(rng.Below(6));
  spec.migrating = rng.Below(4) == 0;
  spec.pager = rng.Below(2) == 0;
  // With the pager on, a tight pool forces real pageout traffic under injection.
  spec.global_pages = spec.pager ? 1024 : 4096;
  if (seed % 8 != 0) {  // every 8th run stays clean to assert zero-cost-when-unarmed
    std::uint32_t count = 1 + rng.Below(3);
    for (std::uint32_t i = 0; i < count; ++i) {
      spec.plan.schedules.push_back(GenSchedule(rng, spec.pager));
    }
  }
  return spec;
}

std::string ReplayCommand(const RunSpec& spec) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "ace_soak --replay --app %s --threads %d --scale %g --variant %d "
                "--policy %s --threshold %d%s%s --fault-seed %llu --plan '%s'",
                spec.app.c_str(), spec.threads, spec.scale, spec.variant, spec.policy.c_str(),
                spec.threshold, spec.migrating ? " --migrating" : "",
                spec.pager ? " --pager" : "",
                static_cast<unsigned long long>(spec.fault_seed),
                spec.plan.Format().c_str());
  return buf;
}

std::string DescribeRun(const RunSpec& spec) {
  char buf[384];
  std::snprintf(buf, sizeof buf, "%-8s threads=%d policy=%-11s%s%s plan=%s", spec.app.c_str(),
                spec.threads, spec.policy.c_str(), spec.migrating ? " migrating" : "",
                spec.pager ? " pager" : "", spec.plan.empty() ? "-" : spec.plan.Format().c_str());
  return buf;
}

// Build the machine, run the application, run every check. Empty string = run OK;
// otherwise the first violation. ACE_CHECK failures abort (caught by the fork layer).
std::string RunInProcess(const RunSpec& spec) {
  std::unique_ptr<ace::App> app = ace::CreateAppByName(spec.app);
  if (app == nullptr) {
    return "unknown application '" + spec.app + "'";
  }
  ace::Machine::Options mo;
  mo.config.num_processors = spec.threads;
  mo.config.global_pages = spec.global_pages;
  mo.policy = ParsePolicy(spec.policy, spec.threshold);
  mo.enable_pager = spec.pager;
  mo.fault_plan = spec.plan;
  mo.fault_seed = spec.fault_seed;
  ace::Machine machine(mo);

  ace::AppConfig cfg;
  cfg.num_threads = spec.threads;
  cfg.scale = spec.scale;
  cfg.variant = spec.variant;
  cfg.runtime.scheduler =
      spec.migrating ? ace::SchedulerKind::kMigrating : ace::SchedulerKind::kAffinity;
  ace::AppResult result = app->Run(machine, cfg);

  if (!result.ok) {
    return "application verification failed: " + result.detail;
  }
  machine.numa_manager().VerifyAllInvariants();

  const ace::MachineStats& s = machine.stats();
  auto fail = [](const char* what, std::uint64_t a, std::uint64_t b) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "counter identity violated: %s (%llu vs %llu)", what,
                  static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
    return std::string(buf);
  };
  // Every synced copy was created by a replication or a zero-fill.
  if (s.page_syncs > s.page_copies + s.zero_fills) {
    return fail("page_syncs <= page_copies + zero_fills", s.page_syncs,
                s.page_copies + s.zero_fills);
  }
  if (machine.pager() != nullptr &&
      machine.pager()->stats().pageins > machine.pager()->stats().pageouts) {
    return fail("pageins <= pageouts", machine.pager()->stats().pageins,
                machine.pager()->stats().pageouts);
  }
  double alpha = s.MeasuredAlpha();
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "measured alpha out of range: %f", alpha);
    return buf;
  }
  if (spec.plan.empty()) {
    std::uint64_t degraded = s.degraded_global_fallbacks + s.degraded_copy_failures +
                             s.degraded_pool_retries + s.degraded_oom_faults;
    if (degraded != 0 || machine.fault_injector() != nullptr) {
      return fail("clean run must not degrade (disarmed injection is zero-cost)", degraded, 0);
    }
  }
  return "";
}

// Run the spec in a forked child: an ACE_CHECK abort (SIGABRT) or any other crash
// becomes a reported violation instead of taking the harness down.
std::string RunForked(const RunSpec& spec) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(2);
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fds[0]);
    std::string what = RunInProcess(spec);
    if (!what.empty()) {
      ssize_t ignored = write(fds[1], what.data(), what.size());
      (void)ignored;
    }
    close(fds[1]);
    _exit(what.empty() ? 0 : 1);
  }
  close(fds[1]);
  std::string what;
  char buf[256];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) {
    what.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    char sig[96];
    std::snprintf(sig, sizeof sig, "child died with signal %d (%s)", WTERMSIG(status),
                  WTERMSIG(status) == SIGABRT ? "ACE_CHECK abort" : strsignal(WTERMSIG(status)));
    return sig;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return "";
  }
  return what.empty() ? "child exited with failure but reported nothing" : what;
}

// Greedy schedule-subset minimization: drop any schedule whose removal keeps the
// violation alive, to a locally minimal (often single-schedule) reproducer.
RunSpec ShrinkPlan(RunSpec spec) {
  bool progress = true;
  while (progress && spec.plan.schedules.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < spec.plan.schedules.size(); ++i) {
      RunSpec candidate = spec;
      candidate.plan.schedules.erase(candidate.plan.schedules.begin() +
                                     static_cast<std::ptrdiff_t>(i));
      if (!RunForked(candidate).empty()) {
        spec = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return spec;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start-seed N] [--time-budget SECONDS[s]]\n"
               "          [--repro-out FILE] [--quiet]\n"
               "   or: %s --replay --app NAME --threads N --scale X --variant N\n"
               "          --policy P --threshold N [--migrating] [--pager]\n"
               "          --fault-seed N --plan STR\n",
               argv0, argv0);
  std::exit(2);
}

double ParseSeconds(const char* text) {
  char* end = nullptr;
  double v = std::strtod(text, &end);
  if (end == text || v < 0) {
    std::fprintf(stderr, "bad --time-budget '%s'\n", text);
    std::exit(2);
  }
  if (*end == 'm') {
    v *= 60;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 64;
  std::uint64_t start_seed = 1;
  double time_budget_sec = 0;  // 0 = unlimited
  std::string repro_out;
  bool quiet = false;
  bool replay = false;
  RunSpec replay_spec;
  std::string replay_plan;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) {
        return inline_value.c_str();
      }
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--start-seed") {
      start_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--time-budget") {
      time_budget_sec = ParseSeconds(next());
    } else if (arg == "--repro-out") {
      repro_out = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg == "--app") {
      replay_spec.app = next();
    } else if (arg == "--threads") {
      replay_spec.threads = std::atoi(next());
    } else if (arg == "--scale") {
      replay_spec.scale = std::atof(next());
    } else if (arg == "--variant") {
      replay_spec.variant = std::atoi(next());
    } else if (arg == "--policy") {
      replay_spec.policy = next();
    } else if (arg == "--threshold") {
      replay_spec.threshold = std::atoi(next());
    } else if (arg == "--migrating") {
      replay_spec.migrating = true;
    } else if (arg == "--pager") {
      replay_spec.pager = true;
    } else if (arg == "--fault-seed") {
      replay_spec.fault_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--plan") {
      replay_plan = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage(argv[0]);
    }
  }

  if (replay) {
    if (!replay_plan.empty()) {
      std::string error;
      if (!ace::FaultPlan::Parse(replay_plan, &replay_spec.plan, &error)) {
        std::fprintf(stderr, "bad --plan: %s\n", error.c_str());
        return 2;
      }
    }
    replay_spec.global_pages = replay_spec.pager ? 1024 : 4096;
    std::printf("replay: %s\n", DescribeRun(replay_spec).c_str());
    std::string what = RunInProcess(replay_spec);  // in-process: aborts are debuggable
    if (!what.empty()) {
      std::printf("VIOLATION: %s\n", what.c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }

  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  std::uint64_t ran = 0;
  int failures = 0;
  for (std::uint64_t n = 0; n < seeds; ++n) {
    if (time_budget_sec > 0 && elapsed() > time_budget_sec) {
      std::printf("time budget (%.0fs) reached after %llu of %llu seeds\n", time_budget_sec,
                  static_cast<unsigned long long>(ran), static_cast<unsigned long long>(seeds));
      break;
    }
    std::uint64_t seed = start_seed + n;
    RunSpec spec = DeriveRun(seed);
    std::string what = RunForked(spec);
    ++ran;
    if (what.empty()) {
      if (!quiet) {
        std::printf("seed %-4llu ok    %s\n", static_cast<unsigned long long>(seed),
                    DescribeRun(spec).c_str());
      }
      continue;
    }
    ++failures;
    std::printf("seed %-4llu FAIL  %s\n", static_cast<unsigned long long>(seed),
                DescribeRun(spec).c_str());
    std::printf("  violation: %s\n", what.c_str());
    RunSpec shrunk = ShrinkPlan(spec);
    std::string repro = ReplayCommand(shrunk);
    std::printf("  shrunk to %zu schedule(s): %s\n", shrunk.plan.schedules.size(),
                shrunk.plan.Format().c_str());
    std::printf("  replay: %s\n", repro.c_str());
    if (!repro_out.empty()) {
      std::ofstream out(repro_out, failures == 1 ? std::ios::trunc : std::ios::app);
      out << repro << "\n";
    }
  }

  std::printf("soak: %llu run(s), %d violation(s), %.1fs\n",
              static_cast<unsigned long long>(ran), failures, elapsed());
  return failures > 0 ? 1 : 0;
}
