// ace_soak — randomized fault-injection soak harness.
//
// Each seed derives one run: an application from the suite, a machine shape
// (threads, policy, threshold, scheduler, pager on/off) and a generated fault plan
// of 1–3 schedules over the graceful-degradation fault sites (src/inject). The run
// executes in a forked child so that an ACE_CHECK abort — a degradation path that
// crashed instead of degrading — is caught as a violation instead of killing the
// harness. After the application finishes, the child checks:
//   * the application's own result verification (every app computes and checks a
//     real result through simulated memory),
//   * the full protocol invariant sweep (VerifyAllInvariants; aborts on violation),
//   * counter identities that must survive any injection: page_syncs <= page_copies
//     + zero_fills, pageins <= pageouts, measured alpha in [0, 1],
//   * on clean runs (every 8th seed carries an empty plan), that every degradation
//     counter stayed zero — injection must be zero-cost when unarmed,
//   * on chaos-free runs (chaos events ride along only on every 4th seed), that the
//     chaos counters stayed zero and no controller was built,
//   * on runs without a permanent failure (kill-node / corrupt-page plans ride the
//     seed % 8 == 5 family, at most one kill each so survivors always remain), that
//     the durability counters stayed zero and no replica/recovery manager was built;
//     on permanent-failure runs, the journal and detection counter identities.
//
// A failing run's plan is shrunk to a minimal subset of schedules that still fails
// and printed as a replayable `ace_soak --replay ...` command line (also written to
// --repro-out for CI artifact upload). --replay executes in-process, so an abort
// produces a debuggable stack instead of a harness report.
//
// Generated plans are constrained to stay *survivable*: the sites with graceful
// fallbacks (local-exhausted, frame-alloc, copy-fail) may fire at any rate, while
// pool-exhausted and victim-contention are kept transient — a plan that permanently
// empties the page pool makes the application legitimately run out of memory, which
// is not a robustness bug. The protocol-mutation sites (skip-sync, skip-move-count)
// are excluded: they corrupt results by design and belong to ace_conform.
//
// Long soaks survive preemption: --checkpoint FILE keeps an append-only journal
// ("ace-soak-journal-v1" header, then one `<seed> ok|FAIL` line per completed seed,
// flushed after each run, torn final lines ignored), and --resume skips journaled
// seeds while preserving their verdicts in the totals. --run-timeout arms an
// alarm() in each forked child so a hung run dies with SIGALRM and is reported as
// a violation instead of wedging the harness. --failures-json writes quarantined
// seeds in the ace-failures-v1 schema with replayable command lines.

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/inject/fault_plan.h"
#include "src/machine/machine.h"
#include "src/metrics/sweep/checkpoint.h"
#include "src/obs/live_stream.h"
#include "src/obs/sampler.h"
#include "src/threads/runtime.h"

namespace {

// SplitMix64 (same generator the differ uses for operation streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t Below(std::uint32_t n) { return static_cast<std::uint32_t>(Next() % n); }

 private:
  std::uint64_t state_;
};

// Everything needed to rebuild one soak run exactly.
struct RunSpec {
  std::string app = "IMatMult";
  int threads = 4;
  double scale = 0.25;
  int variant = 0;
  std::string policy = "move-limit";
  int threshold = 4;
  bool migrating = false;
  bool pager = false;
  bool tlb = false;
  std::uint32_t global_pages = 4096;
  // Open-loop request budget for Serving draws (0 for the batch apps): keeps each
  // soak run a short bounded burst well inside --run-timeout.
  std::uint64_t serving_requests = 0;
  ace::FaultPlan plan;
  std::uint64_t fault_seed = 0;
};

ace::PolicySpec ParsePolicy(const std::string& name, int threshold) {
  if (name == "move-limit") {
    return ace::PolicySpec::MoveLimit(threshold);
  }
  if (name == "all-global") {
    return ace::PolicySpec::AllGlobal();
  }
  if (name == "all-local") {
    return ace::PolicySpec::AllLocal();
  }
  if (name == "reconsider") {
    return ace::PolicySpec::Reconsider(threshold, 50'000'000);
  }
  if (name == "remote-home") {
    return ace::PolicySpec::RemoteHome(threshold);
  }
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

ace::FaultSchedule GenSchedule(Rng& rng, bool pager) {
  using ace::FaultSite;
  static const FaultSite kGraceful[] = {FaultSite::kLocalExhausted,
                                        FaultSite::kFrameAllocTransient,
                                        FaultSite::kReplicationCopyFail};
  ace::FaultSchedule s;
  // Victim contention only has a consumer when the pageout daemon runs, and pool
  // exhaustion is only survivable there (the evict-and-retry loop needs a pager; on a
  // pager-less machine an empty pool is architecturally fatal to the faulting app).
  std::uint32_t pick = rng.Below(pager ? 5 : 3);
  bool transient_only = false;
  if (pick < 3) {
    s.site = kGraceful[pick];
  } else if (pick == 3) {
    s.site = FaultSite::kGlobalPoolExhausted;
    transient_only = true;
  } else {
    s.site = FaultSite::kPageoutVictimContention;
    transient_only = true;
  }
  // Sites without a graceful fallback of their own must fire transiently — a retry
  // after the injected miss has to be able to succeed (never kAlways, every-K >= 2,
  // low probabilities) or the app legitimately runs out of memory.
  switch (rng.Below(transient_only ? 3u : 4u)) {
    case 0:
      s.kind = ace::FaultSchedule::Kind::kNth;
      s.n = 1 + rng.Below(50);
      break;
    case 1:
      s.kind = ace::FaultSchedule::Kind::kEveryK;
      s.n = transient_only ? 2 + rng.Below(7) : 1 + rng.Below(8);
      break;
    case 2: {
      s.kind = ace::FaultSchedule::Kind::kProbability;
      double cap = s.site == ace::FaultSite::kGlobalPoolExhausted
                       ? 0.05
                       : (s.site == ace::FaultSite::kPageoutVictimContention ? 0.2 : 0.3);
      s.probability = cap * static_cast<double>(1 + rng.Below(100)) / 100.0;
      s.seed = rng.Next() & 0xffff;
      break;
    }
    default:
      s.kind = ace::FaultSchedule::Kind::kAlways;
      break;
  }
  return s;
}

// Machine-scoped chaos events are kept survivable by construction: windows start
// after warmup and always end (5–30 ms wide, inside every app's horizon at soak
// scale), drains never exceed half the node's pool unless the full hot-remove
// (permille 0) is drawn, and slow links dilate at most 4x. Node ids are drawn
// below the thread count, so every event targets a node that actually exists.
ace::ChaosEvent GenChaosEvent(Rng& rng, int threads) {
  ace::ChaosEvent e;
  e.node = rng.Below(static_cast<std::uint32_t>(threads));
  e.t_begin = 5'000'000 + static_cast<ace::TimeNs>(rng.Below(45)) * 1'000'000;
  e.t_end = e.t_begin + 5'000'000 + static_cast<ace::TimeNs>(rng.Below(25)) * 1'000'000;
  switch (rng.Below(3)) {
    case 0: {
      e.kind = ace::ChaosKind::kDrainMem;
      static const std::uint32_t kResidual[] = {0, 250, 500};
      e.permille = kResidual[rng.Below(3)];
      break;
    }
    case 1:
      e.kind = ace::ChaosKind::kStallProc;
      break;
    default:
      e.kind = ace::ChaosKind::kSlowLink;
      e.permille = 2000 + rng.Below(5) * 500;  // 2x .. 4x remote-cost dilation
      break;
  }
  return e;
}

// Permanent failures (kill-node / corrupt-page), survivable by construction: at
// most one kill per plan — with threads >= 2 there is always a surviving node to
// reconstruct into and re-home fibers onto — landing early (5–30 ms), while pages
// are still locally owned and there is actually resident state to lose. Corruption
// bursts scrub a whole permille band of a node's resident frames; every detection
// must end in a repair or an accounted loss, never an abort.
ace::ChaosEvent GenDurableChaosEvent(Rng& rng, int threads, bool allow_kill) {
  ace::ChaosEvent e;
  e.node = rng.Below(static_cast<std::uint32_t>(threads));
  e.t_begin = 5'000'000 + static_cast<ace::TimeNs>(rng.Below(25)) * 1'000'000;
  if (allow_kill && rng.Below(2) == 0) {
    e.kind = ace::ChaosKind::kKillNode;
    return e;  // one timestamp; no window end
  }
  e.kind = ace::ChaosKind::kCorruptPage;
  e.t_end = e.t_begin + 1'000'000 + static_cast<ace::TimeNs>(rng.Below(5)) * 1'000'000;
  static const std::uint32_t kPermille[] = {250, 500, 1000};
  e.permille = kPermille[rng.Below(3)];
  return e;
}

RunSpec DeriveRun(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  RunSpec spec;
  spec.fault_seed = seed;
  static const char* kApps[] = {"ParMult", "Gfetch",  "IMatMult", "Primes1", "Primes2",
                                "Primes3", "FFT",     "PlyTrace", "Serving"};
  spec.app = kApps[rng.Below(9)];
  spec.threads = 2 + static_cast<int>(rng.Below(5));
  spec.scale = 0.25;
  if (spec.app == "Primes2" || spec.app == "PlyTrace") {
    spec.variant = static_cast<int>(rng.Below(2));
  }
  if (spec.app == "Serving") {
    spec.serving_requests = 512;
  }
  static const char* kPolicies[] = {"move-limit", "remote-home", "all-global", "all-local",
                                    "reconsider"};
  spec.policy = kPolicies[rng.Below(5)];
  spec.threshold = 1 + static_cast<int>(rng.Below(6));
  spec.migrating = rng.Below(4) == 0;
  spec.pager = rng.Below(2) == 0;
  // The ACE_TLB flip: half of all seeds run through the software-TLB fast path with
  // the poison cross-check forced on, so a degrade path that forgets a shootdown
  // aborts ("poisoned TLB entry") and is caught by the fork layer as a violation.
  spec.tlb = rng.Below(2) == 0;
  // With the pager on, a tight pool forces real pageout traffic under injection.
  spec.global_pages = spec.pager ? 1024 : 4096;
  if (seed % 8 != 0) {  // every 8th run stays clean to assert zero-cost-when-unarmed
    std::uint32_t count = 1 + rng.Below(3);
    for (std::uint32_t i = 0; i < count; ++i) {
      spec.plan.schedules.push_back(GenSchedule(rng, spec.pager));
    }
  }
  // Every 4th seed also rides a machine-scoped chaos plan (disjoint from the clean
  // seeds above: seed % 8 == 0 implies seed % 4 == 0). All other seeds stay
  // chaos-free so RunInProcess can assert the chaos counters' zero-cost invariant.
  if (seed % 4 == 2) {
    std::uint32_t count = 1 + rng.Below(2);
    for (std::uint32_t i = 0; i < count; ++i) {
      spec.plan.chaos.push_back(GenChaosEvent(rng, spec.threads));
    }
  }
  // Every 8th seed (% 8 == 5: disjoint from both the clean family at % 8 == 0 and
  // the transient-chaos family at % 4 == 2) rides a permanent-failure plan, so the
  // soak continuously exercises journal restore, mirror reconstruction, fiber
  // re-homing and the checksum scrub under every machine shape. All other seeds
  // stay durable-free so RunInProcess can assert the durability counters' and the
  // replica/recovery managers' zero-cost invariant.
  if (seed % 8 == 5) {
    std::uint32_t count = 1 + rng.Below(2);
    bool allow_kill = true;
    for (std::uint32_t i = 0; i < count; ++i) {
      ace::ChaosEvent e = GenDurableChaosEvent(rng, spec.threads, allow_kill);
      if (e.kind == ace::ChaosKind::kKillNode) {
        allow_kill = false;  // at most one kill: survivors must always remain
      }
      spec.plan.chaos.push_back(e);
    }
  }
  return spec;
}

std::string ReplayCommand(const RunSpec& spec) {
  char requests[48] = "";
  if (spec.serving_requests != 0) {
    std::snprintf(requests, sizeof requests, " --requests %llu",
                  static_cast<unsigned long long>(spec.serving_requests));
  }
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "ace_soak --replay --app %s --threads %d --scale %g --variant %d "
                "--policy %s --threshold %d%s%s%s%s --fault-seed %llu --plan '%s'",
                spec.app.c_str(), spec.threads, spec.scale, spec.variant, spec.policy.c_str(),
                spec.threshold, spec.migrating ? " --migrating" : "",
                spec.pager ? " --pager" : "", spec.tlb ? " --tlb" : "", requests,
                static_cast<unsigned long long>(spec.fault_seed),
                spec.plan.Format().c_str());
  return buf;
}

std::string DescribeRun(const RunSpec& spec) {
  char buf[384];
  std::snprintf(buf, sizeof buf, "%-8s threads=%d policy=%-11s%s%s%s plan=%s", spec.app.c_str(),
                spec.threads, spec.policy.c_str(), spec.migrating ? " migrating" : "",
                spec.pager ? " pager" : "", spec.tlb ? " tlb" : "",
                spec.plan.empty() ? "-" : spec.plan.Format().c_str());
  return buf;
}

// Live telemetry: when --live-out is set, every run — replay, soak seed, and each
// shrink re-run of a failing seed — appends one ace-live-v1 segment tagged
// "seed=N" to the shared feed. Runs execute one at a time (RunForked is serial),
// so append-mode opens never interleave; a child that aborts mid-run leaves an
// open segment, the crash shape ace_top --validate tolerates by design.
std::string g_live_out;
long long g_sample_interval_ns = 10'000'000;

// Build the machine, run the application, run every check. Empty string = run OK;
// otherwise the first violation. ACE_CHECK failures abort (caught by the fork layer).
std::string RunInProcess(const RunSpec& spec) {
  std::unique_ptr<ace::App> app = ace::CreateAppByName(spec.app);
  if (app == nullptr) {
    return "unknown application '" + spec.app + "'";
  }
  ace::Machine::Options mo;
  mo.config.num_processors = spec.threads;
  mo.config.global_pages = spec.global_pages;
  mo.policy = ParsePolicy(spec.policy, spec.threshold);
  mo.enable_pager = spec.pager;
  mo.enable_tlb = spec.tlb;
  mo.tlb_verify = spec.tlb ? 1 : -1;  // poison cross-check on: stale entries abort
  mo.fault_plan = spec.plan;
  mo.fault_seed = spec.fault_seed;
  ace::Machine machine(mo);

  ace::AppConfig cfg;
  cfg.num_threads = spec.threads;
  cfg.scale = spec.scale;
  cfg.variant = spec.variant;
  cfg.runtime.scheduler =
      spec.migrating ? ace::SchedulerKind::kMigrating : ace::SchedulerKind::kAffinity;
  // Serving draws: a bounded request budget and a per-seed client population, both
  // reproduced exactly by the replay command line.
  cfg.serving.requests = spec.serving_requests;
  cfg.serving.seed = spec.fault_seed;

  ace::LiveStreamWriter live_writer;
  std::unique_ptr<ace::LiveSampler> sampler;
  if (!g_live_out.empty()) {
    if (!live_writer.Open(g_live_out, /*append=*/true)) {
      return "cannot open live feed '" + g_live_out + "'";
    }
    ace::LiveSampler::Options so;
    so.interval_ns = g_sample_interval_ns;
    so.tool = "ace_soak";
    sampler = std::make_unique<ace::LiveSampler>(so, &live_writer);
    machine.observability().EnableHeat();
    sampler->SetSource(&ace::Machine::LiveCaptureThunk, &machine);
    ace::LiveRunMeta meta;
    meta.app = spec.app;
    meta.policy = spec.policy;
    meta.procs = spec.threads;
    meta.threads = spec.threads;
    meta.pages = spec.global_pages;
    meta.page_size = mo.config.page_size;
    meta.seed = spec.fault_seed;
    meta.fault_plan = spec.plan.Format();
    meta.tlb = spec.tlb;
    meta.tag = "seed=" + std::to_string(spec.fault_seed);
    sampler->BeginRun(std::move(meta));
    cfg.runtime.sampler = sampler.get();
  }

  ace::AppResult result = app->Run(machine, cfg);
  if (sampler != nullptr) {
    sampler->EndRun(result.ok ? "ok" : "failed");
  }

  if (!result.ok) {
    return "application verification failed: " + result.detail;
  }
  machine.numa_manager().VerifyAllInvariants();

  const ace::MachineStats& s = machine.stats();
  auto fail = [](const char* what, std::uint64_t a, std::uint64_t b) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "counter identity violated: %s (%llu vs %llu)", what,
                  static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
    return std::string(buf);
  };
  // Every synced copy was created by a replication or a zero-fill.
  if (s.page_syncs > s.page_copies + s.zero_fills) {
    return fail("page_syncs <= page_copies + zero_fills", s.page_syncs,
                s.page_copies + s.zero_fills);
  }
  if (machine.pager() != nullptr &&
      machine.pager()->stats().pageins > machine.pager()->stats().pageouts) {
    return fail("pageins <= pageouts", machine.pager()->stats().pageins,
                machine.pager()->stats().pageouts);
  }
  double alpha = s.MeasuredAlpha();
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "measured alpha out of range: %f", alpha);
    return buf;
  }
  const ace::TlbStats& t = machine.tlb_stats();
  if (spec.tlb) {
    // Every fill follows a miss, with or without injected faults in the resolve path.
    if (t.fills > t.misses) {
      return fail("tlb fills <= tlb misses", t.fills, t.misses);
    }
  } else if (t.hits + t.misses + t.fills + t.batched_refs != 0) {
    return fail("disabled TLB must stay cold", t.hits + t.misses + t.fills + t.batched_refs,
                0);
  }
  if (spec.plan.empty()) {
    std::uint64_t degraded = s.degraded_global_fallbacks + s.degraded_copy_failures +
                             s.degraded_pool_retries + s.degraded_oom_faults;
    if (degraded != 0 || machine.fault_injector() != nullptr) {
      return fail("clean run must not degrade (disarmed injection is zero-cost)", degraded, 0);
    }
  }
  if (spec.plan.chaos.empty()) {
    // Chaos-free runs (including every plan-only seed) must never build a controller
    // or touch the chaos counters — chaos, like injection, is zero-cost when unarmed.
    if (s.chaos_events != 0 || s.evacuated_pages != 0 || machine.chaos() != nullptr) {
      return fail("chaos-free run must keep chaos counters zero",
                  s.chaos_events + s.evacuated_pages, 0);
    }
  }
  std::uint64_t durability = s.replicated_pages + s.journal_bytes + s.recovered_pages +
                             s.lost_pages + s.checksum_failures;
  if (!spec.plan.has_durable_chaos()) {
    // Plans without a permanent failure — transient chaos included — must never arm
    // the durability subsystem: no replica or recovery manager, all five counters
    // exactly zero. Durability, like chaos, is zero-cost when unarmed.
    if (durability != 0 || machine.replica_manager() != nullptr ||
        machine.recovery() != nullptr) {
      return fail("durable-chaos-free run must keep durability counters zero", durability, 0);
    }
  } else {
    // Every journal opens with a full-frame mirror write before any word-sized
    // appends, so the byte count can never undercut the open count.
    if (s.journal_bytes < s.replicated_pages * mo.config.page_size) {
      return fail("journal_bytes >= replicated_pages * page_size", s.journal_bytes,
                  s.replicated_pages * mo.config.page_size);
    }
    // Every detected corruption ends in a repair or an accounted loss; kills add
    // recoveries and losses of their own, so detection can never exceed the sum.
    if (s.checksum_failures > s.recovered_pages + s.lost_pages) {
      return fail("checksum_failures <= recovered_pages + lost_pages", s.checksum_failures,
                  s.recovered_pages + s.lost_pages);
    }
  }
  return "";
}

// Per-child wall-clock budget (0 = unlimited), armed via alarm() inside the fork so
// a hung run dies with SIGALRM instead of wedging the whole soak.
unsigned g_run_timeout_sec = 0;

// Run the spec in a forked child: an ACE_CHECK abort (SIGABRT) or any other crash
// becomes a reported violation instead of taking the harness down.
std::string RunForked(const RunSpec& spec) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(2);
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fds[0]);
    if (g_run_timeout_sec > 0) {
      alarm(g_run_timeout_sec);
    }
    std::string what = RunInProcess(spec);
    if (!what.empty()) {
      ssize_t ignored = write(fds[1], what.data(), what.size());
      (void)ignored;
    }
    close(fds[1]);
    _exit(what.empty() ? 0 : 1);
  }
  close(fds[1]);
  std::string what;
  char buf[256];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) {
    what.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    char sig[128];
    if (WTERMSIG(status) == SIGALRM && g_run_timeout_sec > 0) {
      std::snprintf(sig, sizeof sig, "child died with signal %d (hung run killed after %us by --run-timeout)",
                    WTERMSIG(status), g_run_timeout_sec);
    } else {
      std::snprintf(sig, sizeof sig, "child died with signal %d (%s)", WTERMSIG(status),
                    WTERMSIG(status) == SIGABRT ? "ACE_CHECK abort" : strsignal(WTERMSIG(status)));
    }
    return sig;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    return "";
  }
  return what.empty() ? "child exited with failure but reported nothing" : what;
}

// Greedy plan-subset minimization: drop any schedule or chaos event whose removal
// keeps the violation alive, to a locally minimal (often single-item) reproducer.
RunSpec ShrinkPlan(RunSpec spec) {
  bool progress = true;
  while (progress && spec.plan.schedules.size() + spec.plan.chaos.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < spec.plan.schedules.size(); ++i) {
      RunSpec candidate = spec;
      candidate.plan.schedules.erase(candidate.plan.schedules.begin() +
                                     static_cast<std::ptrdiff_t>(i));
      if (!RunForked(candidate).empty()) {
        spec = std::move(candidate);
        progress = true;
        break;
      }
    }
    if (progress) {
      continue;
    }
    for (std::size_t i = 0; i < spec.plan.chaos.size(); ++i) {
      RunSpec candidate = spec;
      candidate.plan.chaos.erase(candidate.plan.chaos.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      if (!RunForked(candidate).empty()) {
        spec = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return spec;
}

// The soak checkpoint journal: a header line, then one `<seed> ok|FAIL` record per
// completed seed, appended and flushed as each run finishes. A record is only
// trusted when its newline landed, so a SIGKILL mid-append costs at most one
// re-run, never a misparse.
constexpr const char kSoakJournalHeader[] = "ace-soak-journal-v1";

// Parse one complete journal record. Strict: anything but `<digits> ok` or
// `<digits> FAIL` is rejected.
bool ParseJournalLine(const std::string& line, std::uint64_t* seed, bool* ok) {
  const char* p = line.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p || errno != 0 || *end != ' ') {
    return false;
  }
  std::string verdict(end + 1);
  if (verdict == "ok") {
    *ok = true;
  } else if (verdict == "FAIL") {
    *ok = false;
  } else {
    return false;
  }
  *seed = v;
  return true;
}

// Load a journal for --resume. Missing file = fresh start. A wrong header or a
// malformed *interior* line fails closed (the file is not ours, or is corrupt in a
// way a torn write cannot explain); a final line without its newline is the
// expected torn-append shape and is dropped (that seed re-runs). Sets
// `valid_bytes` to the length of the newline-terminated prefix so the caller can
// truncate the torn fragment away before appending.
bool LoadSoakJournal(const std::string& path, std::map<std::uint64_t, bool>* completed,
                     std::size_t* valid_bytes, bool* torn, std::string* error) {
  *valid_bytes = 0;
  *torn = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return true;  // no journal yet: nothing to resume
  }
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  bool torn_tail = !contents.empty() && contents.back() != '\n';
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < contents.size()) {
    std::size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(contents.substr(pos));
      break;
    }
    lines.push_back(contents.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (torn_tail) {
    lines.pop_back();  // torn final append: ignore, that seed just re-runs
    *torn = true;
    *valid_bytes = pos;  // start of the torn fragment
  } else {
    *valid_bytes = contents.size();
  }
  if (lines.empty()) {
    *error = path + ": journal is empty" + (torn_tail ? " (torn header write)" : "");
    return false;
  }
  if (lines[0] != kSoakJournalHeader) {
    *error = path + ": bad journal header '" + lines[0] + "' (want '" + kSoakJournalHeader +
             "') — refusing to resume from a file this harness did not write";
    return false;
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::uint64_t seed = 0;
    bool ok = false;
    if (!ParseJournalLine(lines[i], &seed, &ok)) {
      *error = path + ": malformed journal line " + std::to_string(i + 1) + ": '" + lines[i] +
               "'";
      return false;
    }
    (*completed)[seed] = ok;
  }
  return true;
}

// Classify a RunForked violation string for the quarantine record.
std::string FailureKind(const std::string& what) {
  int sig = 0;
  if (std::sscanf(what.c_str(), "child died with signal %d", &sig) == 1) {
    return "signal:" + std::to_string(sig);
  }
  return "soak-violation";
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start-seed N] [--time-budget SECONDS[s]]\n"
               "          [--repro-out FILE] [--checkpoint FILE] [--resume]\n"
               "          [--run-timeout SECONDS] [--failures-json FILE] [--quiet]\n"
               "          [--live-out FILE] [--sample-interval NS]\n"
               "   or: %s --replay --app NAME --threads N --scale X --variant N\n"
               "          --policy P --threshold N [--migrating] [--pager] [--tlb]\n"
               "          --fault-seed N --plan STR\n",
               argv0, argv0);
  std::exit(2);
}

double ParseSeconds(const char* text) {
  char* end = nullptr;
  double v = std::strtod(text, &end);
  if (end == text || v < 0) {
    std::fprintf(stderr, "bad --time-budget '%s'\n", text);
    std::exit(2);
  }
  if (*end == 'm') {
    v *= 60;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 64;
  std::uint64_t start_seed = 1;
  double time_budget_sec = 0;  // 0 = unlimited
  std::string repro_out;
  std::string checkpoint_path;
  std::string failures_json;
  bool resume = false;
  bool quiet = false;
  bool replay = false;
  RunSpec replay_spec;
  std::string replay_plan;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) {
        return inline_value.c_str();
      }
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--start-seed") {
      start_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--time-budget") {
      time_budget_sec = ParseSeconds(next());
    } else if (arg == "--repro-out") {
      repro_out = next();
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--run-timeout") {
      g_run_timeout_sec = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--failures-json") {
      failures_json = next();
    } else if (arg == "--live-out") {
      g_live_out = next();
    } else if (arg == "--sample-interval") {
      g_sample_interval_ns = std::atoll(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg == "--app") {
      replay_spec.app = next();
    } else if (arg == "--threads") {
      replay_spec.threads = std::atoi(next());
    } else if (arg == "--scale") {
      replay_spec.scale = std::atof(next());
    } else if (arg == "--variant") {
      replay_spec.variant = std::atoi(next());
    } else if (arg == "--policy") {
      replay_spec.policy = next();
    } else if (arg == "--threshold") {
      replay_spec.threshold = std::atoi(next());
    } else if (arg == "--migrating") {
      replay_spec.migrating = true;
    } else if (arg == "--pager") {
      replay_spec.pager = true;
    } else if (arg == "--tlb") {
      replay_spec.tlb = true;
    } else if (arg == "--requests") {
      replay_spec.serving_requests = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--fault-seed") {
      replay_spec.fault_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--plan") {
      replay_plan = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage(argv[0]);
    }
  }

  if (replay) {
    if (!replay_plan.empty()) {
      std::string error;
      if (!ace::FaultPlan::Parse(replay_plan, &replay_spec.plan, &error)) {
        std::fprintf(stderr, "bad --plan: %s\n", error.c_str());
        return 2;
      }
    }
    replay_spec.global_pages = replay_spec.pager ? 1024 : 4096;
    std::printf("replay: %s\n", DescribeRun(replay_spec).c_str());
    std::string what = RunInProcess(replay_spec);  // in-process: aborts are debuggable
    if (!what.empty()) {
      std::printf("VIOLATION: %s\n", what.c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }

  if (resume && checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    return 2;
  }

  if (!g_live_out.empty()) {
    if (g_sample_interval_ns <= 0) {
      std::fprintf(stderr, "--sample-interval must be > 0\n");
      return 2;
    }
    // Children open the feed in append mode, so start it fresh here; a --resume
    // soak keeps the prior segments, matching the journal's skip-completed-seeds
    // semantics.
    if (!resume) {
      std::FILE* f = std::fopen(g_live_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open live feed '%s': %s\n", g_live_out.c_str(),
                     std::strerror(errno));
        return 2;
      }
      std::fclose(f);
    }
  }

  // Load (resume) or start the journal. Resume fails closed on a file that is not a
  // valid soak journal; a fresh --checkpoint run truncates whatever was there.
  std::map<std::uint64_t, bool> completed;
  std::FILE* journal = nullptr;
  if (!checkpoint_path.empty()) {
    std::size_t valid_bytes = 0;
    bool torn = false;
    if (resume) {
      std::string error;
      if (!LoadSoakJournal(checkpoint_path, &completed, &valid_bytes, &torn, &error)) {
        std::fprintf(stderr, "resume: %s\n", error.c_str());
        return 2;
      }
      // Cut the torn fragment off before appending — sealing it with a newline would
      // leave a malformed record that poisons the *next* resume.
      if (torn && truncate(checkpoint_path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
        std::fprintf(stderr, "cannot truncate torn journal tail in '%s': %s\n",
                     checkpoint_path.c_str(), std::strerror(errno));
        return 2;
      }
    }
    bool fresh = !resume || valid_bytes == 0;
    journal = std::fopen(checkpoint_path.c_str(), fresh ? "w" : "a");
    if (journal == nullptr) {
      std::fprintf(stderr, "cannot open checkpoint journal '%s': %s\n", checkpoint_path.c_str(),
                   std::strerror(errno));
      return 2;
    }
    if (fresh) {
      std::fprintf(journal, "%s\n", kSoakJournalHeader);
    }
    std::fflush(journal);
    if (resume && !completed.empty()) {
      std::printf("resume: %zu completed seed(s) loaded from %s\n", completed.size(),
                  checkpoint_path.c_str());
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  std::uint64_t ran = 0;
  std::uint64_t resumed = 0;
  int failures = 0;
  int live_failures = 0;
  std::vector<ace::CellFailure> quarantine;
  for (std::uint64_t n = 0; n < seeds; ++n) {
    if (time_budget_sec > 0 && elapsed() > time_budget_sec) {
      std::printf("time budget (%.0fs) reached after %llu of %llu seeds\n", time_budget_sec,
                  static_cast<unsigned long long>(ran), static_cast<unsigned long long>(seeds));
      break;
    }
    std::uint64_t seed = start_seed + n;
    auto done = completed.find(seed);
    if (done != completed.end()) {
      ++resumed;
      if (!done->second) {
        ++failures;
        ace::CellFailure f;
        f.key = "seed=" + std::to_string(seed);
        f.kind = "journaled";
        f.detail = "failure recorded in checkpoint journal before resume";
        f.replay = ReplayCommand(DeriveRun(seed));
        quarantine.push_back(std::move(f));
      }
      if (!quiet) {
        std::printf("seed %-4llu %-5s (resumed from journal)\n",
                    static_cast<unsigned long long>(seed), done->second ? "ok" : "FAIL");
      }
      continue;
    }
    RunSpec spec = DeriveRun(seed);
    std::string what = RunForked(spec);
    ++ran;
    if (journal != nullptr) {
      std::fprintf(journal, "%llu %s\n", static_cast<unsigned long long>(seed),
                   what.empty() ? "ok" : "FAIL");
      std::fflush(journal);
    }
    if (what.empty()) {
      if (!quiet) {
        std::printf("seed %-4llu ok    %s\n", static_cast<unsigned long long>(seed),
                    DescribeRun(spec).c_str());
      }
      continue;
    }
    ++failures;
    ++live_failures;
    std::printf("seed %-4llu FAIL  %s\n", static_cast<unsigned long long>(seed),
                DescribeRun(spec).c_str());
    std::printf("  violation: %s\n", what.c_str());
    RunSpec shrunk = ShrinkPlan(spec);
    std::string repro = ReplayCommand(shrunk);
    std::printf("  shrunk to %zu schedule(s) + %zu chaos event(s): %s\n",
                shrunk.plan.schedules.size(), shrunk.plan.chaos.size(),
                shrunk.plan.Format().c_str());
    std::printf("  replay: %s\n", repro.c_str());
    if (!repro_out.empty()) {
      std::ofstream out(repro_out, live_failures == 1 ? std::ios::trunc : std::ios::app);
      out << repro << "\n";
    }
    ace::CellFailure f;
    f.key = "seed=" + std::to_string(seed);
    f.kind = FailureKind(what);
    f.detail = what;
    f.replay = std::move(repro);
    quarantine.push_back(std::move(f));
  }
  if (journal != nullptr) {
    std::fclose(journal);
  }

  if (!failures_json.empty()) {
    std::string error;
    if (!ace::WriteFailuresJson("soak", quarantine, failures_json, &error)) {
      std::fprintf(stderr, "failed to write %s: %s\n", failures_json.c_str(), error.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu quarantined)\n", failures_json.c_str(), quarantine.size());
  }

  std::printf("soak: %llu run(s), %llu resumed, %d violation(s), %.1fs\n",
              static_cast<unsigned long long>(ran), static_cast<unsigned long long>(resumed),
              failures, elapsed());
  if (!g_live_out.empty()) {
    std::printf("live feed: %s (one segment per run; validate with ace_top --validate)\n",
                g_live_out.c_str());
  }
  return failures > 0 ? 1 : 0;
}
