// ace_top — render numatop-style reports from an observability dump, validate
// trace and live-telemetry files, and watch a running simulation live.
//
// Input is either a JSONL dump (ace_run --jsonl-out) for the reports, a Chrome
// trace-event JSON (ace_run --trace-out) / JSONL for --validate, or an ace-live-v1
// streaming feed (ace_run --live-out) for --validate / --follow / --live.
// Validation parses the file with the in-tree JSON parser and checks the structural
// properties the writers guarantee: known event names, per-processor timestamps
// monotone nondecreasing, and — for live feeds — non-negative per-interval deltas
// whose sum equals each segment's summary exactly, tolerating one torn final line.
//
// --live tails the feed into an interactive full-screen display (keys: 1-4 switch
// the hot-pages / locality / per-processor / decisions views, +/- resize the
// hot-pages table, q quits); when stdout is not a terminal it degrades to --follow,
// which prints a discrete text frame per new sample — the CI-log mode.
//
// Examples:
//   ace_run --app IMatMult --jsonl-out run.jsonl
//   ace_top run.jsonl
//   ace_top --validate trace.json
//   ace_run --app IMatMult --live-out live.jsonl &  ace_top --live live.jsonl
//   ace_top --follow --timeout 30 live.jsonl

#include <poll.h>
#include <termios.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/heat.h"
#include "src/obs/json_lite.h"
#include "src/obs/live_feed.h"
#include "src/sim/stats.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ace_top [--top N] [--validate | --follow | --live] FILE\n"
               "  FILE            JSONL dump from ace_run --jsonl-out (reports), a\n"
               "                  Chrome trace JSON / JSONL for --validate, or an\n"
               "                  ace-live-v1 feed (ace_run --live-out)\n"
               "  --top N         rows in the hot-pages table (default 10)\n"
               "  --validate      parse FILE and check its format's invariants\n"
               "  --live          tail an ace-live-v1 feed interactively (TUI);\n"
               "                  falls back to --follow when stdout is not a tty\n"
               "  --follow        tail an ace-live-v1 feed as periodic text frames\n"
               "  --view V        initial view: hot|locality|procs|decisions\n"
               "  --timeout S     give up tailing after S seconds without a summary\n");
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ace_top: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Map an exported event name back to its TraceEventType; -1 for non-protocol names
// (metadata events in Chrome traces).
int EventTypeByName(const std::string& name) {
  for (int t = 0; t < ace::kNumTraceEventTypes; ++t) {
    if (name == ace::TraceEventTypeName(static_cast<ace::TraceEventType>(t))) {
      return t;
    }
  }
  return -1;
}

// --- validation ------------------------------------------------------------------------

bool ValidateChromeTrace(const std::string& text) {
  ace::JsonValue doc;
  std::string error;
  if (!ace::ParseJson(text, &doc, &error)) {
    std::fprintf(stderr, "ace_top: JSON parse error: %s\n", error.c_str());
    return false;
  }
  const ace::JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "ace_top: no traceEvents array\n");
    return false;
  }
  std::map<int, double> last_ts;  // per tid
  std::size_t instants = 0;
  for (const ace::JsonValue& e : events->items) {
    if (!e.is_object()) {
      std::fprintf(stderr, "ace_top: traceEvents entry is not an object\n");
      return false;
    }
    if (e.StringOr("ph", "") != "i") {
      continue;  // metadata
    }
    std::string name = e.StringOr("name", "");
    if (EventTypeByName(name) < 0) {
      std::fprintf(stderr, "ace_top: unknown event name '%s'\n", name.c_str());
      return false;
    }
    int tid = static_cast<int>(e.NumberOr("tid", -1));
    double ts = e.NumberOr("ts", -1.0);
    if (tid < 0 || ts < 0) {
      std::fprintf(stderr, "ace_top: instant event without tid/ts\n");
      return false;
    }
    auto it = last_ts.find(tid);
    if (it != last_ts.end() && ts < it->second) {
      std::fprintf(stderr, "ace_top: timestamps regress on tid %d (%.3f < %.3f)\n", tid,
                   ts, it->second);
      return false;
    }
    last_ts[tid] = ts;
    ++instants;
  }
  std::printf("valid Chrome trace: %zu events on %zu tracks, timestamps monotone\n",
              instants, last_ts.size());
  return true;
}

bool ValidateJsonl(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::map<int, long long> last_ts;  // per proc
  std::size_t lineno = 0;
  std::size_t events = 0;
  bool saw_meta = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    ace::JsonValue v;
    std::string error;
    if (!ace::ParseJson(line, &v, &error)) {
      std::fprintf(stderr, "ace_top: line %zu: %s\n", lineno, error.c_str());
      return false;
    }
    std::string type = v.StringOr("type", "");
    if (type == "meta") {
      if (v.StringOr("format", "") != "ace-obs") {
        std::fprintf(stderr, "ace_top: line %zu: not an ace-obs dump\n", lineno);
        return false;
      }
      saw_meta = true;
    } else if (type == "event") {
      if (EventTypeByName(v.StringOr("ev", "")) < 0) {
        std::fprintf(stderr, "ace_top: line %zu: unknown event type\n", lineno);
        return false;
      }
      int proc = static_cast<int>(v.NumberOr("proc", -1));
      long long ts = static_cast<long long>(v.NumberOr("ts_ns", -1));
      if (proc < 0 || ts < 0) {
        std::fprintf(stderr, "ace_top: line %zu: event without proc/ts_ns\n", lineno);
        return false;
      }
      auto it = last_ts.find(proc);
      if (it != last_ts.end() && ts < it->second) {
        std::fprintf(stderr, "ace_top: line %zu: timestamps regress on proc %d\n", lineno,
                     proc);
        return false;
      }
      last_ts[proc] = ts;
      ++events;
    }
  }
  if (!saw_meta) {
    std::fprintf(stderr, "ace_top: missing meta line\n");
    return false;
  }
  std::printf("valid ace-obs JSONL: %zu events on %zu processors, timestamps monotone\n",
              events, last_ts.size());
  return true;
}

// --- ace-live-v1 feeds -----------------------------------------------------------------

double MonotoneNow() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) / 1e9;
}

void SleepMs(int ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1'000'000L};
  nanosleep(&ts, nullptr);
}

bool ValidateLiveFile(const std::string& text) {
  ace::LiveValidateResult r = ace::ValidateLiveFeed(text);
  if (!r.ok) {
    std::fprintf(stderr, "ace_top: %s\n", r.error.c_str());
    return false;
  }
  std::printf(
      "valid ace-live-v1 feed: %zu segments, %zu samples — timestamps monotone, "
      "deltas non-negative, summaries equal their delta sums%s%s\n",
      r.segments, r.samples, r.torn_tail ? "; torn final line tolerated" : "",
      r.open_segment ? "; unterminated segment tolerated" : "");
  return true;
}

// Put the terminal into non-canonical, no-echo mode for the TUI's keys; restored on
// destruction. Degrades silently when stdin is not a terminal.
struct RawTty {
  termios orig{};
  bool active = false;
  RawTty() {
    if (tcgetattr(STDIN_FILENO, &orig) == 0) {
      termios raw = orig;
      raw.c_lflag &= ~static_cast<tcflag_t>(ICANON | ECHO);
      raw.c_cc[VMIN] = 0;
      raw.c_cc[VTIME] = 0;
      active = tcsetattr(STDIN_FILENO, TCSANOW, &raw) == 0;
    }
  }
  ~RawTty() {
    if (active) {
      tcsetattr(STDIN_FILENO, TCSANOW, &orig);
    }
  }
};

// Tail `path`, folding records into a LiveFeedState and rendering frames.
//
// TUI mode: full-screen, keyboard-driven, stays up across segments until q (or the
// timeout). Follow mode: one plain-text frame per batch of new samples; exits 0 at
// EOF once the feed's last complete record was a summary — so following a finished
// feed renders it once and returns, the CI shape. Returns 3 on timeout, 1 on a
// malformed (complete) feed line.
int TailLiveFeed(const std::string& path, bool tui, ace::LiveView view,
                 std::size_t top_n, long timeout_sec) {
  const double start = MonotoneNow();
  std::FILE* f = nullptr;
  while ((f = std::fopen(path.c_str(), "rb")) == nullptr) {
    if (timeout_sec > 0 && MonotoneNow() - start > static_cast<double>(timeout_sec)) {
      std::fprintf(stderr, "ace_top: timed out waiting for %s\n", path.c_str());
      return 3;
    }
    SleepMs(100);
  }

  ace::LiveFeedParser parser;
  ace::LiveFeedState state;
  RawTty* raw = nullptr;
  if (tui) {
    raw = new RawTty();
    std::printf("\x1b[?25l");  // hide cursor
  }
  auto render = [&] {
    std::string frame = ace::RenderLiveFrame(state, view, top_n);
    if (tui) {
      std::printf("\x1b[H\x1b[2J%s\nkeys: 1 hot-pages  2 locality  3 per-proc  "
                  "4 decisions  +/- rows  q quit\n",
                  frame.c_str());
    } else {
      std::printf("%s\n", frame.c_str());
    }
    std::fflush(stdout);
  };

  int ret = 0;
  bool dirty = true;  // render at least once, even on an empty feed
  std::vector<ace::JsonValue> records;
  for (;;) {
    char buf[1 << 16];
    std::size_t n = std::fread(buf, 1, sizeof buf, f);
    if (n > 0) {
      records.clear();
      if (!parser.Feed(std::string_view(buf, n), &records)) {
        // Only a *complete* malformed line lands here; a torn tail stays pending in
        // the parser and is retried when its newline arrives.
        for (const ace::JsonValue& r : records) {
          state.Apply(r);
        }
        std::fprintf(stderr, "ace_top: malformed feed line: %s\n",
                     parser.error().c_str());
        ret = 1;
        break;
      }
      for (const ace::JsonValue& r : records) {
        state.Apply(r);
      }
      if (!records.empty()) {
        dirty = true;
      }
      if (n == sizeof buf) {
        continue;  // drain what is already on disk before rendering
      }
    }

    if (dirty) {
      render();
      dirty = false;
    }
    // EOF for now. Follow mode is done once the feed's last complete record closed a
    // segment; the TUI stays up (a bench/soak writer may append another segment).
    if (!tui && state.finished) {
      break;
    }
    if (timeout_sec > 0 && MonotoneNow() - start > static_cast<double>(timeout_sec)) {
      if (!state.finished) {
        std::fprintf(stderr, "ace_top: timed out waiting for a summary record\n");
        ret = 3;
      }
      break;
    }
    if (tui) {
      pollfd pfd{STDIN_FILENO, POLLIN, 0};
      poll(&pfd, 1, 100);
      char key;
      bool quit = false;
      while (read(STDIN_FILENO, &key, 1) == 1) {
        switch (key) {
          case 'q':
          case 'Q':
            quit = true;
            break;
          case '1':
            view = ace::LiveView::kHotPages;
            break;
          case '2':
            view = ace::LiveView::kLocality;
            break;
          case '3':
            view = ace::LiveView::kPerProc;
            break;
          case '4':
            view = ace::LiveView::kDecisions;
            break;
          case '+':
            top_n++;
            break;
          case '-':
            if (top_n > 1) {
              top_n--;
            }
            break;
          default:
            continue;
        }
        dirty = true;
      }
      if (quit) {
        break;
      }
      if (dirty) {
        render();
        dirty = false;
      }
    } else {
      SleepMs(200);
    }
    std::clearerr(f);
  }
  std::fclose(f);
  if (tui) {
    std::printf("\x1b[?25h");  // show cursor
    std::fflush(stdout);
    delete raw;
  }
  return ret;
}

// --- report rendering ------------------------------------------------------------------

int RenderFromJsonl(const std::string& text, std::size_t top_n) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;

  int procs = 0;
  std::uint32_t pages = 0;
  std::string app;
  std::string policy;
  ace::MachineStats stats;
  std::vector<ace::JsonValue> heat_lines;
  ace::JsonValue decisions_line;
  bool have_decisions = false;

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    ace::JsonValue v;
    std::string error;
    if (!ace::ParseJson(line, &v, &error)) {
      std::fprintf(stderr, "ace_top: line %zu: %s\n", lineno, error.c_str());
      return 1;
    }
    std::string type = v.StringOr("type", "");
    if (type == "meta") {
      if (v.StringOr("format", "") != "ace-obs") {
        std::fprintf(stderr, "ace_top: not an ace-obs JSONL dump (need --jsonl-out)\n");
        return 1;
      }
      procs = static_cast<int>(v.NumberOr("procs", 0));
      pages = static_cast<std::uint32_t>(v.NumberOr("pages", 0));
      app = v.StringOr("app", "?");
      policy = v.StringOr("policy", "?");
    } else if (type == "proc") {
      int p = static_cast<int>(v.NumberOr("proc", -1));
      if (p >= 0 && p < static_cast<int>(ace::kMaxProcessors)) {
        ace::ProcRefCounts& c = stats.refs[static_cast<std::size_t>(p)];
        c.fetch_local = static_cast<std::uint64_t>(v.NumberOr("fetch_local", 0));
        c.fetch_global = static_cast<std::uint64_t>(v.NumberOr("fetch_global", 0));
        c.fetch_remote = static_cast<std::uint64_t>(v.NumberOr("fetch_remote", 0));
        c.store_local = static_cast<std::uint64_t>(v.NumberOr("store_local", 0));
        c.store_global = static_cast<std::uint64_t>(v.NumberOr("store_global", 0));
        c.store_remote = static_cast<std::uint64_t>(v.NumberOr("store_remote", 0));
      }
    } else if (type == "decisions") {
      decisions_line = v;
      have_decisions = true;
    } else if (type == "heat") {
      heat_lines.push_back(std::move(v));
    }
  }
  if (procs <= 0 || pages == 0) {
    std::fprintf(stderr, "ace_top: missing or incomplete meta line\n");
    return 1;
  }

  ace::HeatProfile heat(procs, pages);
  if (have_decisions) {
    heat.AddDecisions(ace::Placement::kLocal,
                      static_cast<std::uint64_t>(decisions_line.NumberOr("local", 0)));
    heat.AddDecisions(ace::Placement::kGlobal,
                      static_cast<std::uint64_t>(decisions_line.NumberOr("global", 0)));
    heat.AddDecisions(ace::Placement::kRemoteHome,
                      static_cast<std::uint64_t>(decisions_line.NumberOr("remote_home", 0)));
  }
  // Per-event-type JSONL keys, in TraceEventType order.
  static const char* const kEventKeys[ace::kNumTraceEventTypes] = {
      "faults",  "zero_fills", "replicates", "migrates",    "syncs",
      "flushes", "unmaps",     "pins",       "pageouts",    "pageins",
      "alloc_fails", "frees",  "bulk_migrates", "degrades", "recovers"};
  for (const ace::JsonValue& v : heat_lines) {
    std::uint32_t lp = static_cast<std::uint32_t>(v.NumberOr("lp", pages));
    if (lp >= pages) {
      continue;
    }
    ace::PageHeat& h = heat.MutablePage(lp);
    h.fetch_local = static_cast<std::uint64_t>(v.NumberOr("fetch_local", 0));
    h.fetch_global = static_cast<std::uint64_t>(v.NumberOr("fetch_global", 0));
    h.fetch_remote = static_cast<std::uint64_t>(v.NumberOr("fetch_remote", 0));
    h.store_local = static_cast<std::uint64_t>(v.NumberOr("store_local", 0));
    h.store_global = static_cast<std::uint64_t>(v.NumberOr("store_global", 0));
    h.store_remote = static_cast<std::uint64_t>(v.NumberOr("store_remote", 0));
    std::string state = v.StringOr("state", "ro");
    h.state = state == "lw"   ? ace::PageState::kLocalWritable
              : state == "gw" ? ace::PageState::kGlobalWritable
              : state == "rh" ? ace::PageState::kRemoteHomed
                              : ace::PageState::kReadOnly;
    for (int t = 0; t < ace::kNumTraceEventTypes; ++t) {
      std::uint32_t n = static_cast<std::uint32_t>(v.NumberOr(kEventKeys[t], 0));
      h.events[static_cast<std::size_t>(t)] = n;
      heat.AddMachineEvents(static_cast<ace::TraceEventType>(t), n);
    }
    h.time_in_state[0] = static_cast<ace::TimeNs>(v.NumberOr("t_ro_ns", 0));
    h.time_in_state[1] = static_cast<ace::TimeNs>(v.NumberOr("t_lw_ns", 0));
    h.time_in_state[2] = static_cast<ace::TimeNs>(v.NumberOr("t_gw_ns", 0));
    h.time_in_state[3] = static_cast<ace::TimeNs>(v.NumberOr("t_rh_ns", 0));
    const ace::JsonValue* by_proc = v.Find("by_proc");
    if (by_proc != nullptr && by_proc->is_array()) {
      for (std::size_t p = 0; p < by_proc->items.size() && p < ace::kMaxProcessors; ++p) {
        h.refs_by_proc[p] = static_cast<std::uint64_t>(by_proc->items[p].number);
      }
    }
  }

  std::printf("ace_top — %s under %s (%d processors, %u pages)\n\n", app.c_str(),
              policy.c_str(), procs, pages);
  std::printf("%s\n", ace::RenderHotPages(heat, top_n).c_str());
  std::printf("%s\n", ace::RenderLocality(stats, procs).c_str());
  std::printf("%s", ace::RenderDecisions(heat).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t top_n = 10;
  bool validate = false;
  bool follow = false;
  bool live = false;
  long timeout_sec = 0;
  ace::LiveView view = ace::LiveView::kHotPages;
  std::string file;

  auto parse_view = [&](const std::string& v) -> bool {
    if (v == "hot") {
      view = ace::LiveView::kHotPages;
    } else if (v == "locality") {
      view = ace::LiveView::kLocality;
    } else if (v == "procs") {
      view = ace::LiveView::kPerProc;
    } else if (v == "decisions") {
      view = ace::LiveView::kDecisions;
    } else {
      std::fprintf(stderr, "ace_top: unknown view '%s'\n", v.c_str());
      return false;
    }
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--live") {
      live = true;
    } else if (arg == "--top") {
      top_n = static_cast<std::size_t>(std::atol(next()));
    } else if (arg.rfind("--top=", 0) == 0) {
      top_n = static_cast<std::size_t>(std::atol(arg.c_str() + 6));
    } else if (arg == "--timeout") {
      timeout_sec = std::atol(next());
    } else if (arg.rfind("--timeout=", 0) == 0) {
      timeout_sec = std::atol(arg.c_str() + 10);
    } else if (arg == "--view") {
      if (!parse_view(next())) {
        return 2;
      }
    } else if (arg.rfind("--view=", 0) == 0) {
      if (!parse_view(arg.substr(7))) {
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ace_top: unknown option '%s'\n", arg.c_str());
      Usage();
      return 2;
    } else {
      file = arg;
    }
  }
  if (file.empty()) {
    Usage();
    return 2;
  }

  if (live || follow) {
    // --live needs a terminal for the full-screen display; anything else (CI logs,
    // pipes) gets the discrete-frame follow mode.
    bool tui = live && isatty(STDOUT_FILENO) == 1;
    return TailLiveFeed(file, tui, view, top_n, timeout_sec);
  }

  std::string text = ReadFile(file);
  // A Chrome trace is one JSON object; the JSONL dumps start with a meta line (the
  // live feed's meta names its format). Sniff by content.
  auto pos = text.find_first_not_of(" \t\r\n");
  bool looks_live = text.find("\"format\":\"ace-live-v1\"") != std::string::npos;
  bool looks_jsonl = text.find("\"type\":\"meta\"") != std::string::npos &&
                     text.find("\"traceEvents\"") == std::string::npos;
  if (pos == std::string::npos) {
    std::fprintf(stderr, "ace_top: %s is empty\n", file.c_str());
    return 1;
  }

  if (validate) {
    bool ok = looks_live    ? ValidateLiveFile(text)
              : looks_jsonl ? ValidateJsonl(text)
                            : ValidateChromeTrace(text);
    return ok ? 0 : 1;
  }
  if (looks_live) {
    // Static render of a finished feed: fold the whole file and print one frame.
    ace::LiveFeedParser parser;
    ace::LiveFeedState state;
    std::vector<ace::JsonValue> records;
    parser.Feed(text, &records);
    for (const ace::JsonValue& r : records) {
      state.Apply(r);
    }
    std::printf("%s", ace::RenderLiveFrame(state, view, top_n).c_str());
    return 0;
  }
  if (!looks_jsonl) {
    std::fprintf(stderr,
                 "ace_top: reports need the JSONL dump (ace_run --jsonl-out); Chrome "
                 "traces only support --validate\n");
    return 2;
  }
  return RenderFromJsonl(text, top_n);
}
