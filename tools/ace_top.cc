// ace_top — render numatop-style reports from an observability dump, and validate
// trace files.
//
// Input is either a JSONL dump (ace_run --jsonl-out) for the reports, or a Chrome
// trace-event JSON (ace_run --trace-out) / JSONL for --validate. Validation parses the
// file with the in-tree JSON parser and checks the structural properties the exporters
// guarantee: every event names a known processor and per-processor timestamps are
// monotone nondecreasing (each track is a virtual clock). The CI trace test drives it.
//
// Examples:
//   ace_run --app IMatMult --jsonl-out run.jsonl
//   ace_top run.jsonl
//   ace_top --top 20 run.jsonl
//   ace_top --validate trace.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/heat.h"
#include "src/obs/json_lite.h"
#include "src/sim/stats.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ace_top [--top N] [--validate] FILE\n"
               "  FILE            JSONL dump from ace_run --jsonl-out (reports), or a\n"
               "                  Chrome trace JSON / JSONL for --validate\n"
               "  --top N         rows in the hot-pages table (default 10)\n"
               "  --validate      parse FILE and check per-processor timestamp order\n");
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ace_top: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Map an exported event name back to its TraceEventType; -1 for non-protocol names
// (metadata events in Chrome traces).
int EventTypeByName(const std::string& name) {
  for (int t = 0; t < ace::kNumTraceEventTypes; ++t) {
    if (name == ace::TraceEventTypeName(static_cast<ace::TraceEventType>(t))) {
      return t;
    }
  }
  return -1;
}

// --- validation ------------------------------------------------------------------------

bool ValidateChromeTrace(const std::string& text) {
  ace::JsonValue doc;
  std::string error;
  if (!ace::ParseJson(text, &doc, &error)) {
    std::fprintf(stderr, "ace_top: JSON parse error: %s\n", error.c_str());
    return false;
  }
  const ace::JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "ace_top: no traceEvents array\n");
    return false;
  }
  std::map<int, double> last_ts;  // per tid
  std::size_t instants = 0;
  for (const ace::JsonValue& e : events->items) {
    if (!e.is_object()) {
      std::fprintf(stderr, "ace_top: traceEvents entry is not an object\n");
      return false;
    }
    if (e.StringOr("ph", "") != "i") {
      continue;  // metadata
    }
    std::string name = e.StringOr("name", "");
    if (EventTypeByName(name) < 0) {
      std::fprintf(stderr, "ace_top: unknown event name '%s'\n", name.c_str());
      return false;
    }
    int tid = static_cast<int>(e.NumberOr("tid", -1));
    double ts = e.NumberOr("ts", -1.0);
    if (tid < 0 || ts < 0) {
      std::fprintf(stderr, "ace_top: instant event without tid/ts\n");
      return false;
    }
    auto it = last_ts.find(tid);
    if (it != last_ts.end() && ts < it->second) {
      std::fprintf(stderr, "ace_top: timestamps regress on tid %d (%.3f < %.3f)\n", tid,
                   ts, it->second);
      return false;
    }
    last_ts[tid] = ts;
    ++instants;
  }
  std::printf("valid Chrome trace: %zu events on %zu tracks, timestamps monotone\n",
              instants, last_ts.size());
  return true;
}

bool ValidateJsonl(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::map<int, long long> last_ts;  // per proc
  std::size_t lineno = 0;
  std::size_t events = 0;
  bool saw_meta = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    ace::JsonValue v;
    std::string error;
    if (!ace::ParseJson(line, &v, &error)) {
      std::fprintf(stderr, "ace_top: line %zu: %s\n", lineno, error.c_str());
      return false;
    }
    std::string type = v.StringOr("type", "");
    if (type == "meta") {
      if (v.StringOr("format", "") != "ace-obs") {
        std::fprintf(stderr, "ace_top: line %zu: not an ace-obs dump\n", lineno);
        return false;
      }
      saw_meta = true;
    } else if (type == "event") {
      if (EventTypeByName(v.StringOr("ev", "")) < 0) {
        std::fprintf(stderr, "ace_top: line %zu: unknown event type\n", lineno);
        return false;
      }
      int proc = static_cast<int>(v.NumberOr("proc", -1));
      long long ts = static_cast<long long>(v.NumberOr("ts_ns", -1));
      if (proc < 0 || ts < 0) {
        std::fprintf(stderr, "ace_top: line %zu: event without proc/ts_ns\n", lineno);
        return false;
      }
      auto it = last_ts.find(proc);
      if (it != last_ts.end() && ts < it->second) {
        std::fprintf(stderr, "ace_top: line %zu: timestamps regress on proc %d\n", lineno,
                     proc);
        return false;
      }
      last_ts[proc] = ts;
      ++events;
    }
  }
  if (!saw_meta) {
    std::fprintf(stderr, "ace_top: missing meta line\n");
    return false;
  }
  std::printf("valid ace-obs JSONL: %zu events on %zu processors, timestamps monotone\n",
              events, last_ts.size());
  return true;
}

// --- report rendering ------------------------------------------------------------------

int RenderFromJsonl(const std::string& text, std::size_t top_n) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;

  int procs = 0;
  std::uint32_t pages = 0;
  std::string app;
  std::string policy;
  ace::MachineStats stats;
  std::vector<ace::JsonValue> heat_lines;
  ace::JsonValue decisions_line;
  bool have_decisions = false;

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    ace::JsonValue v;
    std::string error;
    if (!ace::ParseJson(line, &v, &error)) {
      std::fprintf(stderr, "ace_top: line %zu: %s\n", lineno, error.c_str());
      return 1;
    }
    std::string type = v.StringOr("type", "");
    if (type == "meta") {
      if (v.StringOr("format", "") != "ace-obs") {
        std::fprintf(stderr, "ace_top: not an ace-obs JSONL dump (need --jsonl-out)\n");
        return 1;
      }
      procs = static_cast<int>(v.NumberOr("procs", 0));
      pages = static_cast<std::uint32_t>(v.NumberOr("pages", 0));
      app = v.StringOr("app", "?");
      policy = v.StringOr("policy", "?");
    } else if (type == "proc") {
      int p = static_cast<int>(v.NumberOr("proc", -1));
      if (p >= 0 && p < static_cast<int>(ace::kMaxProcessors)) {
        ace::ProcRefCounts& c = stats.refs[static_cast<std::size_t>(p)];
        c.fetch_local = static_cast<std::uint64_t>(v.NumberOr("fetch_local", 0));
        c.fetch_global = static_cast<std::uint64_t>(v.NumberOr("fetch_global", 0));
        c.fetch_remote = static_cast<std::uint64_t>(v.NumberOr("fetch_remote", 0));
        c.store_local = static_cast<std::uint64_t>(v.NumberOr("store_local", 0));
        c.store_global = static_cast<std::uint64_t>(v.NumberOr("store_global", 0));
        c.store_remote = static_cast<std::uint64_t>(v.NumberOr("store_remote", 0));
      }
    } else if (type == "decisions") {
      decisions_line = v;
      have_decisions = true;
    } else if (type == "heat") {
      heat_lines.push_back(std::move(v));
    }
  }
  if (procs <= 0 || pages == 0) {
    std::fprintf(stderr, "ace_top: missing or incomplete meta line\n");
    return 1;
  }

  ace::HeatProfile heat(procs, pages);
  if (have_decisions) {
    heat.AddDecisions(ace::Placement::kLocal,
                      static_cast<std::uint64_t>(decisions_line.NumberOr("local", 0)));
    heat.AddDecisions(ace::Placement::kGlobal,
                      static_cast<std::uint64_t>(decisions_line.NumberOr("global", 0)));
    heat.AddDecisions(ace::Placement::kRemoteHome,
                      static_cast<std::uint64_t>(decisions_line.NumberOr("remote_home", 0)));
  }
  // Per-event-type JSONL keys, in TraceEventType order.
  static const char* const kEventKeys[ace::kNumTraceEventTypes] = {
      "faults",  "zero_fills", "replicates", "migrates",    "syncs",
      "flushes", "unmaps",     "pins",       "pageouts",    "pageins",
      "alloc_fails", "frees",  "bulk_migrates", "degrades"};
  for (const ace::JsonValue& v : heat_lines) {
    std::uint32_t lp = static_cast<std::uint32_t>(v.NumberOr("lp", pages));
    if (lp >= pages) {
      continue;
    }
    ace::PageHeat& h = heat.MutablePage(lp);
    h.fetch_local = static_cast<std::uint64_t>(v.NumberOr("fetch_local", 0));
    h.fetch_global = static_cast<std::uint64_t>(v.NumberOr("fetch_global", 0));
    h.fetch_remote = static_cast<std::uint64_t>(v.NumberOr("fetch_remote", 0));
    h.store_local = static_cast<std::uint64_t>(v.NumberOr("store_local", 0));
    h.store_global = static_cast<std::uint64_t>(v.NumberOr("store_global", 0));
    h.store_remote = static_cast<std::uint64_t>(v.NumberOr("store_remote", 0));
    std::string state = v.StringOr("state", "ro");
    h.state = state == "lw"   ? ace::PageState::kLocalWritable
              : state == "gw" ? ace::PageState::kGlobalWritable
              : state == "rh" ? ace::PageState::kRemoteHomed
                              : ace::PageState::kReadOnly;
    for (int t = 0; t < ace::kNumTraceEventTypes; ++t) {
      std::uint32_t n = static_cast<std::uint32_t>(v.NumberOr(kEventKeys[t], 0));
      h.events[static_cast<std::size_t>(t)] = n;
      heat.AddMachineEvents(static_cast<ace::TraceEventType>(t), n);
    }
    h.time_in_state[0] = static_cast<ace::TimeNs>(v.NumberOr("t_ro_ns", 0));
    h.time_in_state[1] = static_cast<ace::TimeNs>(v.NumberOr("t_lw_ns", 0));
    h.time_in_state[2] = static_cast<ace::TimeNs>(v.NumberOr("t_gw_ns", 0));
    h.time_in_state[3] = static_cast<ace::TimeNs>(v.NumberOr("t_rh_ns", 0));
    const ace::JsonValue* by_proc = v.Find("by_proc");
    if (by_proc != nullptr && by_proc->is_array()) {
      for (std::size_t p = 0; p < by_proc->items.size() && p < ace::kMaxProcessors; ++p) {
        h.refs_by_proc[p] = static_cast<std::uint64_t>(by_proc->items[p].number);
      }
    }
  }

  std::printf("ace_top — %s under %s (%d processors, %u pages)\n\n", app.c_str(),
              policy.c_str(), procs, pages);
  std::printf("%s\n", ace::RenderHotPages(heat, top_n).c_str());
  std::printf("%s\n", ace::RenderLocality(stats, procs).c_str());
  std::printf("%s", ace::RenderDecisions(heat).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t top_n = 10;
  bool validate = false;
  std::string file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      top_n = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg.rfind("--top=", 0) == 0) {
      top_n = static_cast<std::size_t>(std::atol(arg.c_str() + 6));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ace_top: unknown option '%s'\n", arg.c_str());
      Usage();
      return 2;
    } else {
      file = arg;
    }
  }
  if (file.empty()) {
    Usage();
    return 2;
  }

  std::string text = ReadFile(file);
  // A Chrome trace is one JSON object; the JSONL dump starts with a meta line. Sniff
  // by the first non-space content.
  auto pos = text.find_first_not_of(" \t\r\n");
  bool looks_jsonl = text.find("\"type\":\"meta\"") != std::string::npos &&
                     text.find("\"traceEvents\"") == std::string::npos;
  if (pos == std::string::npos) {
    std::fprintf(stderr, "ace_top: %s is empty\n", file.c_str());
    return 1;
  }

  if (validate) {
    bool ok = looks_jsonl ? ValidateJsonl(text) : ValidateChromeTrace(text);
    return ok ? 0 : 1;
  }
  if (!looks_jsonl) {
    std::fprintf(stderr,
                 "ace_top: reports need the JSONL dump (ace_run --jsonl-out); Chrome "
                 "traces only support --validate\n");
    return 2;
  }
  return RenderFromJsonl(text, top_n);
}
