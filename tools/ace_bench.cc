// ace_bench — the experiment-sweep driver and perf-regression gate.
//
// Runs a named suite of the paper's evaluation matrix on the work-stealing sweep
// engine (src/metrics/sweep), emits the results as BENCH_<suite>.json, and optionally
// compares them against a committed baseline, exiting nonzero when any metric
// breaches its tolerance. This is the single measurement substrate behind the
// reproduced tables: bench_table3_placement and friends render their tables from the
// same engine, and CI gates every change on `ace_bench --suite smoke --baseline ...`.
//
// Examples:
//   ace_bench --suite smoke
//   ace_bench --suite smoke --workers 8 --out BENCH_smoke.json
//   ace_bench --suite smoke --baseline bench/baselines/BENCH_smoke.json
//   ace_bench --suite full --render
//   ace_bench --list
//
// Resilient long runs (DESIGN.md section 9): --checkpoint journals every completed
// cell as an atomic self-validating fragment, --resume skips them on the next
// invocation and produces a merged result whose cell bytes are identical to an
// uninterrupted run; --deadline/--move-budget arm the hung-run watchdog;
// --retries/--backoff retry cells that die; persistent deaths are quarantined into
// --failures FILE instead of aborting the sweep.
//
//   ace_bench --suite full --checkpoint ckpt/ --out BENCH_full.json
//   ace_bench --suite full --checkpoint ckpt/ --resume --out BENCH_full.json
//   ace_bench --suite smoke --deadline 30000000000 --move-budget 2000000 \
//             --retries 2 --failures failures.json
//
// Exit codes: 0 success; 1 baseline regression; 2 usage error; 3 an application's
// self-verification failed; 4 cells were quarantined under --fail-fast.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "src/inject/fault_plan.h"
#include "src/obs/live_stream.h"
#include "src/obs/sampler.h"
#include "src/metrics/sweep/baseline.h"
#include "src/metrics/sweep/checkpoint.h"
#include "src/metrics/sweep/matrix.h"
#include "src/metrics/sweep/render.h"
#include "src/metrics/sweep/report.h"
#include "src/metrics/sweep/runner.h"
#include "src/metrics/table.h"

namespace {

void Usage() {
  std::printf(
      "usage: ace_bench --suite NAME [options]\n"
      "  --list                 list available suites and their cell counts\n"
      "  --suite NAME           suite to run: smoke | full | table3 | table4 |\n"
      "                         threshold | gl | refs | serving | serving-full |\n"
      "                         serving-chaos | serving-killnode\n"
      "  --workers N            host worker threads (default: hardware concurrency)\n"
      "  --out FILE             write results as BENCH JSON (self-validated)\n"
      "  --baseline FILE        compare against a baseline BENCH JSON; exit 1 on any\n"
      "                         tolerance breach\n"
      "  --render               print the paper-table views of the results\n"
      "  --threads N            override every cell's thread count\n"
      "  --scale X              override every cell's workload scale\n"
      "  --quiet                suppress per-cell progress lines\n"
      "resilience (DESIGN.md section 9):\n"
      "  --checkpoint DIR       journal each completed cell into DIR (atomic\n"
      "                         one-cell fragments; survives SIGKILL)\n"
      "  --resume               with --checkpoint: load DIR, skip completed cells\n"
      "  --deadline NS          watchdog: virtual-time budget for a scale-1 cell\n"
      "                         (scaled by each cell's scale); kills wedged cells\n"
      "  --move-budget N        watchdog: kill when ownership moves + syncs pass N\n"
      "                         (catches page ping-pong livelock)\n"
      "  --retries N            re-run a cell that died up to N extra times\n"
      "  --backoff MS           base host backoff between attempts (jittered)\n"
      "  --isolate              fork each cell so aborts/signals kill only it\n"
      "  --fail-fast            stop starting cells after the first quarantine;\n"
      "                         exit 4 when anything was quarantined\n"
      "  --failures FILE        write quarantined cells as ace-failures-v1 JSON\n"
      "  --plan PLAN            fault-injection plan applied to every cell\n"
      "  --chaos PLAN           chaos events appended to every cell's plan (same\n"
      "                         grammar, e.g. 'drain-mem@1:30000000:90000000:250')\n"
      "  --fault-seed N         seed for probabilistic plan schedules\n"
      "  --only SUBSTR          run only cells whose key contains SUBSTR (replay)\n"
      "  --no-host              omit host stats from --out (byte-comparable)\n"
      "live telemetry (view with ace_top --live FILE):\n"
      "  --live-out FILE        stream every placement run as an ace-live-v1 segment\n"
      "                         tagged with its cell key (forces --workers 1;\n"
      "                         incompatible with --isolate)\n"
      "  --sample-interval NS   virtual-time sampling cadence (default: 10000000)\n"
      "all options also accept the --opt=value spelling.\n");
}

struct Args {
  std::string suite;
  int workers = 0;
  std::string out;
  std::string baseline;
  bool render = false;
  bool list = false;
  bool quiet = false;
  int threads = 0;
  double scale = 0.0;
  std::string checkpoint;
  bool resume = false;
  long long deadline_ns = 0;
  unsigned long long move_budget = 0;
  int retries = 0;
  int backoff_ms = 0;
  bool isolate = false;
  bool fail_fast = false;
  std::string failures;
  std::string plan;
  std::string chaos;
  unsigned long long fault_seed = 0;
  std::string only;
  bool no_host = false;
  std::string live_out;
  long long sample_interval_ns = 10'000'000;
};

// Returns the option value for `name` ("--name value" or "--name=value"), advancing
// `i` as needed, or nullptr if argv[i] is not this option.
const char* OptValue(int argc, char** argv, int* i, const char* name) {
  const char* arg = argv[*i];
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return nullptr;
  }
  if (arg[len] == '=') {
    return arg + len + 1;
  }
  if (arg[len] == '\0') {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", name);
      std::exit(2);
    }
    *i += 1;
    return argv[*i];
  }
  return nullptr;
}

bool OptFlag(const char* arg, const char* name) { return std::strcmp(arg, name) == 0; }

struct ProgressCtx {
  ace::SweepCheckpoint* checkpoint = nullptr;  // non-null: journal completed cells
  bool quiet = false;
};

void Progress(void* ctx, const ace::CellResult& result, std::size_t done,
              std::size_t total) {
  auto* pc = static_cast<ProgressCtx*>(ctx);
  if (!pc->quiet) {
    const char* verdict = result.ok ? "ok" : "FAILED";
    if (result.from_checkpoint) {
      verdict = "resumed";
    } else if (result.died()) {
      verdict = result.failure_kind.c_str();
    }
    std::fprintf(stderr, "[%3zu/%3zu] %-40s %s\n", done, total,
                 result.cell.Key().c_str(), verdict);
  }
  // Journal executed cells (resumed ones are already on disk, byte-identically).
  if (pc->checkpoint != nullptr && !result.from_checkpoint) {
    std::string error;
    if (!pc->checkpoint->RecordCell(result, &error)) {
      std::fprintf(stderr, "WARNING: checkpoint write failed: %s\n", error.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = OptValue(argc, argv, &i, "--suite")) != nullptr) {
      args.suite = v;
    } else if ((v = OptValue(argc, argv, &i, "--workers")) != nullptr) {
      args.workers = std::atoi(v);
    } else if ((v = OptValue(argc, argv, &i, "--out")) != nullptr) {
      args.out = v;
    } else if ((v = OptValue(argc, argv, &i, "--baseline")) != nullptr) {
      args.baseline = v;
    } else if ((v = OptValue(argc, argv, &i, "--threads")) != nullptr) {
      args.threads = std::atoi(v);
    } else if ((v = OptValue(argc, argv, &i, "--scale")) != nullptr) {
      args.scale = std::atof(v);
    } else if ((v = OptValue(argc, argv, &i, "--checkpoint")) != nullptr) {
      args.checkpoint = v;
    } else if ((v = OptValue(argc, argv, &i, "--deadline")) != nullptr) {
      args.deadline_ns = std::atoll(v);
    } else if ((v = OptValue(argc, argv, &i, "--move-budget")) != nullptr) {
      args.move_budget = std::strtoull(v, nullptr, 10);
    } else if ((v = OptValue(argc, argv, &i, "--retries")) != nullptr) {
      args.retries = std::atoi(v);
    } else if ((v = OptValue(argc, argv, &i, "--backoff")) != nullptr) {
      args.backoff_ms = std::atoi(v);
    } else if ((v = OptValue(argc, argv, &i, "--failures")) != nullptr) {
      args.failures = v;
    } else if ((v = OptValue(argc, argv, &i, "--plan")) != nullptr) {
      args.plan = v;
    } else if ((v = OptValue(argc, argv, &i, "--chaos")) != nullptr) {
      args.chaos = v;
    } else if ((v = OptValue(argc, argv, &i, "--fault-seed")) != nullptr) {
      args.fault_seed = std::strtoull(v, nullptr, 10);
    } else if ((v = OptValue(argc, argv, &i, "--only")) != nullptr) {
      args.only = v;
    } else if ((v = OptValue(argc, argv, &i, "--live-out")) != nullptr) {
      args.live_out = v;
    } else if ((v = OptValue(argc, argv, &i, "--sample-interval")) != nullptr) {
      args.sample_interval_ns = std::atoll(v);
    } else if (OptFlag(argv[i], "--resume")) {
      args.resume = true;
    } else if (OptFlag(argv[i], "--isolate")) {
      args.isolate = true;
    } else if (OptFlag(argv[i], "--fail-fast")) {
      args.fail_fast = true;
    } else if (OptFlag(argv[i], "--no-host")) {
      args.no_host = true;
    } else if (OptFlag(argv[i], "--render")) {
      args.render = true;
    } else if (OptFlag(argv[i], "--list")) {
      args.list = true;
    } else if (OptFlag(argv[i], "--quiet")) {
      args.quiet = true;
    } else if (OptFlag(argv[i], "--help") || OptFlag(argv[i], "-h")) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      Usage();
      return 2;
    }
  }

  if (args.list) {
    ace::TextTable table({"suite", "cells", "description"});
    for (const std::string& name : ace::SuiteNames()) {
      ace::Suite suite = ace::MakeSuite(name);
      table.AddRow({name, std::to_string(suite.cells.size()), suite.description});
    }
    table.Print();
    return 0;
  }

  if (args.suite.empty() || !ace::IsKnownSuite(args.suite)) {
    std::fprintf(stderr, args.suite.empty() ? "--suite is required\n"
                                            : "unknown suite '%s'\n",
                 args.suite.c_str());
    Usage();
    return 2;
  }

  if (args.resume && args.checkpoint.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint DIR\n");
    return 2;
  }

  if (!args.live_out.empty() && args.isolate) {
    // A forked cell would write its segments through a duplicated FILE*, tearing the
    // parent's stream mid-record. Telemetry for isolated runs belongs to ace_soak,
    // which gives each forked child its own append-mode segment.
    std::fprintf(stderr, "--live-out is incompatible with --isolate\n");
    return 2;
  }
  if (!args.live_out.empty() && args.sample_interval_ns <= 0) {
    std::fprintf(stderr, "--sample-interval must be > 0\n");
    return 2;
  }

  ace::Suite suite = ace::MakeSuite(args.suite, args.threads, args.scale);
  if (!args.plan.empty()) {
    ace::FaultPlan parsed;
    std::string error;
    if (!ace::FaultPlan::Parse(args.plan, &parsed, &error)) {
      std::fprintf(stderr, "invalid --plan: %s\n", error.c_str());
      return 2;
    }
    for (ace::SweepCell& cell : suite.cells) {
      cell.fault_plan = args.plan;
      cell.fault_seed = args.fault_seed;
    }
  }
  if (!args.chaos.empty()) {
    // Chaos items append to whatever plan a cell already carries (suite-defined or
    // --plan), keeping one plan string per cell for keys and replay lines.
    ace::FaultPlan parsed;
    std::string error;
    if (!ace::FaultPlan::Parse(args.chaos, &parsed, &error)) {
      std::fprintf(stderr, "invalid --chaos: %s\n", error.c_str());
      return 2;
    }
    for (ace::SweepCell& cell : suite.cells) {
      cell.fault_plan = cell.fault_plan.empty() ? args.chaos
                                                : cell.fault_plan + ";" + args.chaos;
      if (args.fault_seed != 0) {
        cell.fault_seed = args.fault_seed;
      }
    }
  }
  if (!args.only.empty()) {
    std::vector<ace::SweepCell> kept;
    for (const ace::SweepCell& cell : suite.cells) {
      if (cell.Key().find(args.only) != std::string::npos) {
        kept.push_back(cell);
      }
    }
    if (kept.empty()) {
      std::fprintf(stderr, "--only '%s' matches no cell of suite %s\n",
                   args.only.c_str(), suite.name.c_str());
      return 2;
    }
    suite.cells = std::move(kept);
  }

  ace::SweepOptions options;
  options.workers = args.workers;
  ace::LiveStreamWriter live_writer;
  std::unique_ptr<ace::LiveSampler> sampler;
  if (!args.live_out.empty()) {
    if (args.workers > 1) {
      std::fprintf(stderr,
                   "note: --live-out streams one cell at a time; running on 1 worker\n");
    }
    if (!live_writer.Open(args.live_out, /*append=*/false)) {
      std::fprintf(stderr, "ERROR: cannot open %s for writing\n", args.live_out.c_str());
      return 2;
    }
    ace::LiveSampler::Options so;
    so.interval_ns = args.sample_interval_ns;
    so.tool = "ace_bench";
    sampler = std::make_unique<ace::LiveSampler>(so, &live_writer);
    options.sampler = sampler.get();
  }
  options.resilience.watchdog.deadline_ns = args.deadline_ns;
  options.resilience.watchdog.move_budget = args.move_budget;
  options.resilience.max_attempts = args.retries + 1;
  options.resilience.backoff_ms =
      args.backoff_ms > 0 ? static_cast<std::uint32_t>(args.backoff_ms) : 0;
  options.resilience.isolate = args.isolate;
  options.resilience.fail_fast = args.fail_fast;

  ace::SweepCheckpoint checkpoint;
  std::map<std::string, ace::CellResult> resumed;
  if (!args.checkpoint.empty()) {
    std::string error;
    if (!checkpoint.Open(args.checkpoint, suite.name, options.base_config, &error)) {
      std::fprintf(stderr, "ERROR: %s\n", error.c_str());
      return 2;
    }
    if (args.resume) {
      // Fail closed: a corrupt fragment is a hard error, not a silent re-run.
      if (!checkpoint.LoadCompleted(&resumed, &error)) {
        std::fprintf(stderr, "ERROR: resume failed: %s\n", error.c_str());
        return 2;
      }
      std::fprintf(stderr, "resume: %zu completed cell(s) loaded from %s\n",
                   resumed.size(), args.checkpoint.c_str());
      options.resumed = &resumed;
    }
  }

  ProgressCtx progress_ctx;
  progress_ctx.quiet = args.quiet;
  if (!args.checkpoint.empty()) {
    progress_ctx.checkpoint = &checkpoint;
  }
  if (!args.quiet || progress_ctx.checkpoint != nullptr) {
    options.progress = Progress;
    options.progress_ctx = &progress_ctx;
  }

  std::fprintf(stderr, "suite %s: %zu cells on %s workers\n", suite.name.c_str(),
               suite.cells.size(),
               args.workers > 0 ? std::to_string(args.workers).c_str() : "auto");
  ace::SweepResult result = ace::RunSweep(suite.name, suite.cells, options);

  std::printf("suite %s: %zu cells, %d workers, %.2fs wall (%.2f runs/sec, %.1fs simulated, "
              "%llu steals)\n",
              result.suite.c_str(), result.cells.size(), result.host.workers,
              result.host.wall_seconds, result.host.runs_per_second,
              result.host.simulated_seconds,
              static_cast<unsigned long long>(result.host.steals));

  if (sampler != nullptr) {
    live_writer.Close();
    if (!live_writer.ok()) {
      std::fprintf(stderr, "ERROR: live feed %s hit a write error\n",
                   args.live_out.c_str());
      return 2;
    }
    std::printf("live feed: %s (%llu segments, %llu samples, every %lld ns)\n",
                args.live_out.c_str(), (unsigned long long)sampler->segments(),
                (unsigned long long)sampler->total_samples(),
                (long long)args.sample_interval_ns);
  }

  if (args.render) {
    std::printf("\n-- Table 3 view --\n%s", ace::RenderTable3(result).c_str());
    std::printf("\n-- Table 4 view --\n%s", ace::RenderTable4(result).c_str());
    std::printf("\n-- threshold view --\n%s", ace::RenderThresholdTable(result).c_str());
    std::printf("\n-- G/L view --\n%s", ace::RenderGlTable(result).c_str());
    std::printf("\n-- serving view --\n%s", ace::RenderServingTable(result).c_str());
  }

  if (!args.out.empty()) {
    std::string error;
    if (!ace::WriteSweepJsonFile(result, args.out, &error, !args.no_host)) {
      std::fprintf(stderr, "ERROR writing %s: %s\n", args.out.c_str(), error.c_str());
      return 2;
    }
    std::printf("wrote %s\n", args.out.c_str());
  }

  if (!args.failures.empty()) {
    // Fill the replay column: the invocation re-running exactly that one cell.
    for (ace::CellFailure& failure : result.failures) {
      std::string replay = "ace_bench --suite " + args.suite;
      if (args.threads > 0) {
        replay += " --threads " + std::to_string(args.threads);
      }
      if (args.scale > 0.0) {
        replay += " --scale " + std::to_string(args.scale);
      }
      if (!args.plan.empty()) {
        replay += " --plan '" + args.plan + "'";
      }
      if (!args.chaos.empty()) {
        replay += " --chaos '" + args.chaos + "'";
      }
      if ((!args.plan.empty() || !args.chaos.empty()) && args.fault_seed != 0) {
        replay += " --fault-seed " + std::to_string(args.fault_seed);
      }
      if (args.deadline_ns > 0) {
        replay += " --deadline " + std::to_string(args.deadline_ns);
      }
      if (args.move_budget > 0) {
        replay += " --move-budget " + std::to_string(args.move_budget);
      }
      if (args.isolate) {
        replay += " --isolate";
      }
      replay += " --only '" + failure.key + "'";
      failure.replay = std::move(replay);
    }
    std::string error;
    if (!ace::WriteFailuresJson(args.suite, result.failures, args.failures, &error)) {
      std::fprintf(stderr, "ERROR writing %s: %s\n", args.failures.c_str(), error.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu quarantined)\n", args.failures.c_str(),
                result.failures.size());
  }

  if (!result.failures.empty()) {
    std::fprintf(stderr, "\n%zu cell(s) quarantined:\n", result.failures.size());
    for (const ace::CellFailure& failure : result.failures) {
      std::fprintf(stderr, "  %s: %s after %d attempt(s)\n", failure.key.c_str(),
                   failure.kind.c_str(), failure.attempts);
    }
  }

  int exit_code = 0;
  if (!args.baseline.empty()) {
    ace::BaselineComparison cmp = ace::CompareAgainstBaselineFile(result, args.baseline);
    std::printf("\nbaseline %s:\n%s", args.baseline.c_str(),
                ace::RenderComparison(cmp).c_str());
    if (cmp.HasRegression()) {
      std::printf("RESULT: REGRESSION\n");
      exit_code = 1;
    } else {
      std::printf("RESULT: ok\n");
    }
  }

  // Verification failures (a run that completed but computed the wrong answer) are
  // always fatal; quarantined deaths fail the invocation only under --fail-fast —
  // that is the whole point of quarantine (and the baseline comparison above already
  // flags the coverage loss as missing cells).
  bool verify_failed = false;
  for (const ace::CellResult& cell : result.cells) {
    if (!cell.ok && !cell.died()) {
      std::fprintf(stderr, "verification FAILED: %s: %s\n", cell.cell.Key().c_str(),
                   cell.detail.c_str());
      verify_failed = true;
    }
  }
  if (verify_failed) {
    return 3;
  }
  if (args.fail_fast && !result.failures.empty()) {
    return 4;
  }
  return exit_code;
}
