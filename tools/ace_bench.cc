// ace_bench — the experiment-sweep driver and perf-regression gate.
//
// Runs a named suite of the paper's evaluation matrix on the work-stealing sweep
// engine (src/metrics/sweep), emits the results as BENCH_<suite>.json, and optionally
// compares them against a committed baseline, exiting nonzero when any metric
// breaches its tolerance. This is the single measurement substrate behind the
// reproduced tables: bench_table3_placement and friends render their tables from the
// same engine, and CI gates every change on `ace_bench --suite smoke --baseline ...`.
//
// Examples:
//   ace_bench --suite smoke
//   ace_bench --suite smoke --workers 8 --out BENCH_smoke.json
//   ace_bench --suite smoke --baseline bench/baselines/BENCH_smoke.json
//   ace_bench --suite full --render
//   ace_bench --list
//
// Exit codes: 0 success; 1 baseline regression; 2 usage error; 3 an application's
// self-verification failed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/metrics/sweep/baseline.h"
#include "src/metrics/sweep/matrix.h"
#include "src/metrics/sweep/render.h"
#include "src/metrics/sweep/report.h"
#include "src/metrics/sweep/runner.h"
#include "src/metrics/table.h"

namespace {

void Usage() {
  std::printf(
      "usage: ace_bench --suite NAME [options]\n"
      "  --list                 list available suites and their cell counts\n"
      "  --suite NAME           suite to run: smoke | full | table3 | table4 |\n"
      "                         threshold | gl\n"
      "  --workers N            host worker threads (default: hardware concurrency)\n"
      "  --out FILE             write results as BENCH JSON (self-validated)\n"
      "  --baseline FILE        compare against a baseline BENCH JSON; exit 1 on any\n"
      "                         tolerance breach\n"
      "  --render               print the paper-table views of the results\n"
      "  --threads N            override every cell's thread count\n"
      "  --scale X              override every cell's workload scale\n"
      "  --quiet                suppress per-cell progress lines\n"
      "all options also accept the --opt=value spelling.\n");
}

struct Args {
  std::string suite;
  int workers = 0;
  std::string out;
  std::string baseline;
  bool render = false;
  bool list = false;
  bool quiet = false;
  int threads = 0;
  double scale = 0.0;
};

// Returns the option value for `name` ("--name value" or "--name=value"), advancing
// `i` as needed, or nullptr if argv[i] is not this option.
const char* OptValue(int argc, char** argv, int* i, const char* name) {
  const char* arg = argv[*i];
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return nullptr;
  }
  if (arg[len] == '=') {
    return arg + len + 1;
  }
  if (arg[len] == '\0') {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", name);
      std::exit(2);
    }
    *i += 1;
    return argv[*i];
  }
  return nullptr;
}

bool OptFlag(const char* arg, const char* name) { return std::strcmp(arg, name) == 0; }

void Progress(void* ctx, const ace::CellResult& result, std::size_t done,
              std::size_t total) {
  (void)ctx;
  std::fprintf(stderr, "[%3zu/%3zu] %-40s %s\n", done, total, result.cell.Key().c_str(),
               result.ok ? "ok" : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if ((v = OptValue(argc, argv, &i, "--suite")) != nullptr) {
      args.suite = v;
    } else if ((v = OptValue(argc, argv, &i, "--workers")) != nullptr) {
      args.workers = std::atoi(v);
    } else if ((v = OptValue(argc, argv, &i, "--out")) != nullptr) {
      args.out = v;
    } else if ((v = OptValue(argc, argv, &i, "--baseline")) != nullptr) {
      args.baseline = v;
    } else if ((v = OptValue(argc, argv, &i, "--threads")) != nullptr) {
      args.threads = std::atoi(v);
    } else if ((v = OptValue(argc, argv, &i, "--scale")) != nullptr) {
      args.scale = std::atof(v);
    } else if (OptFlag(argv[i], "--render")) {
      args.render = true;
    } else if (OptFlag(argv[i], "--list")) {
      args.list = true;
    } else if (OptFlag(argv[i], "--quiet")) {
      args.quiet = true;
    } else if (OptFlag(argv[i], "--help") || OptFlag(argv[i], "-h")) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      Usage();
      return 2;
    }
  }

  if (args.list) {
    ace::TextTable table({"suite", "cells", "description"});
    for (const std::string& name : ace::SuiteNames()) {
      ace::Suite suite = ace::MakeSuite(name);
      table.AddRow({name, std::to_string(suite.cells.size()), suite.description});
    }
    table.Print();
    return 0;
  }

  if (args.suite.empty() || !ace::IsKnownSuite(args.suite)) {
    std::fprintf(stderr, args.suite.empty() ? "--suite is required\n"
                                            : "unknown suite '%s'\n",
                 args.suite.c_str());
    Usage();
    return 2;
  }

  ace::Suite suite = ace::MakeSuite(args.suite, args.threads, args.scale);
  ace::SweepOptions options;
  options.workers = args.workers;
  if (!args.quiet) {
    options.progress = Progress;
  }

  std::fprintf(stderr, "suite %s: %zu cells on %s workers\n", suite.name.c_str(),
               suite.cells.size(),
               args.workers > 0 ? std::to_string(args.workers).c_str() : "auto");
  ace::SweepResult result = ace::RunSweep(suite.name, suite.cells, options);

  std::printf("suite %s: %zu cells, %d workers, %.2fs wall (%.2f runs/sec, %.1fs simulated, "
              "%llu steals)\n",
              result.suite.c_str(), result.cells.size(), result.host.workers,
              result.host.wall_seconds, result.host.runs_per_second,
              result.host.simulated_seconds,
              static_cast<unsigned long long>(result.host.steals));

  if (args.render) {
    std::printf("\n-- Table 3 view --\n%s", ace::RenderTable3(result).c_str());
    std::printf("\n-- Table 4 view --\n%s", ace::RenderTable4(result).c_str());
    std::printf("\n-- threshold view --\n%s", ace::RenderThresholdTable(result).c_str());
    std::printf("\n-- G/L view --\n%s", ace::RenderGlTable(result).c_str());
  }

  if (!args.out.empty()) {
    std::string error;
    if (!ace::WriteSweepJsonFile(result, args.out, &error)) {
      std::fprintf(stderr, "ERROR writing %s: %s\n", args.out.c_str(), error.c_str());
      return 2;
    }
    std::printf("wrote %s\n", args.out.c_str());
  }

  int exit_code = 0;
  if (!args.baseline.empty()) {
    ace::BaselineComparison cmp = ace::CompareAgainstBaselineFile(result, args.baseline);
    std::printf("\nbaseline %s:\n%s", args.baseline.c_str(),
                ace::RenderComparison(cmp).c_str());
    if (cmp.HasRegression()) {
      std::printf("RESULT: REGRESSION\n");
      exit_code = 1;
    } else {
      std::printf("RESULT: ok\n");
    }
  }

  if (!result.AllOk()) {
    for (const ace::CellResult& cell : result.cells) {
      if (!cell.ok) {
        std::fprintf(stderr, "verification FAILED: %s: %s\n", cell.cell.Key().c_str(),
                     cell.detail.c_str());
      }
    }
    return 3;
  }
  return exit_code;
}
