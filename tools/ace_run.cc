// ace_run — command-line driver for the simulated ACE.
//
// Runs any application from the suite under any policy/machine configuration and
// reports times, placement statistics, the analytic model, and (optionally) the
// trace-based sharing analysis and optimal-placement estimate.
//
// Examples:
//   ace_run --app IMatMult
//   ace_run --app Primes3 --threads 8 --policy remote-home --threshold 2
//   ace_run --app Primes2 --variant 1 --trace
//   ace_run --app FFT --experiment            # full Tnuma/Tglobal/Tlocal + model
//   ace_run --app PlyTrace --optimal          # compare against the oracle placement
//   ace_run --list

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/machine/chaos.h"
#include "src/machine/recovery.h"
#include "src/metrics/experiment.h"
#include "src/metrics/table.h"
#include "src/obs/export.h"
#include "src/obs/live_stream.h"
#include "src/obs/observability.h"
#include "src/obs/sampler.h"
#include "src/obs/snapshot.h"
#include "src/trace/ref_trace.h"

namespace {

void Usage() {
  std::printf(
      "usage: ace_run [options]\n"
      "  --list                 list available applications\n"
      "  --app NAME             application to run (default IMatMult)\n"
      "  --threads N            worker threads / processors (default 7)\n"
      "  --scale X              workload scale factor (default 1.0)\n"
      "  --variant N            application variant (default 0)\n"
      "  --policy P             move-limit | all-global | all-local | reconsider |\n"
      "                         remote-home (default move-limit)\n"
      "  --threshold N          pin/home threshold (default 4)\n"
      "  --page-size BYTES      page size, power of two (default 4096)\n"
      "  --scheduler S          affinity | migrating (default affinity)\n"
      "  --pager                enable pageout to backing store\n"
      "  --global-pages N       logical page pool size (default 4096)\n"
      "  --seed N               run seed (fault-plan probability streams; default 0)\n"
      "serving workload (--app Serving; ignored by the batch apps):\n"
      "  --tenants N            key namespaces sharing the store (default 4)\n"
      "  --skew X               Zipfian exponent of key popularity (default 0.9)\n"
      "  --churn N              scheduled hot-shard rotation phases (default 3)\n"
      "  --requests N           open-loop request budget / duration (0 = from --scale)\n"
      "  --plan STR             arm a fault-injection plan (src/inject grammar, e.g.\n"
      "                         'local-exhausted@every:3;copy-fail@nth:5')\n"
      "  --chaos STR            append machine-scoped chaos events to the plan, e.g.\n"
      "                         'drain-mem@1:30000000:90000000:250' (same grammar;\n"
      "                         also arms the serving SLO guard)\n"
      "  --trace                print the sharing-class trace report\n"
      "  --no-tlb               disable the software-TLB fast path (same metrics,\n"
      "                         slower; ACE_TLB=0 in the environment does the same)\n"
      "  --tlb-stats            print the tlb counter group (hits, fills,\n"
      "                         shootdowns, batched refs). Off by default so output\n"
      "                         stays byte-comparable across --no-tlb\n"
      "  --optimal              print the optimal-placement comparison\n"
      "  --experiment           run all three placements and print the model row\n"
      "observability (src/obs; all options also accept --opt=value):\n"
      "  --trace-out FILE       write a Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --jsonl-out FILE       write the full observability dump as JSONL\n"
      "  --heat-csv FILE        write the per-page heat table as CSV\n"
      "  --report LIST          comma-separated: hot-pages,locality,decisions\n"
      "  --top N                rows in the hot-pages report (default 10)\n"
      "  --trace-buffer N       trace ring capacity per processor (default 65536)\n"
      "live telemetry (tail with ace_top --live / --follow):\n"
      "  --live-out FILE        stream an ace-live-v1 JSONL feed while running\n"
      "  --sample-interval NS   virtual-time sampling cadence in ns (default 10ms)\n");
}

ace::PolicySpec ParsePolicy(const std::string& name, int threshold) {
  if (name == "move-limit") {
    return ace::PolicySpec::MoveLimit(threshold);
  }
  if (name == "all-global") {
    return ace::PolicySpec::AllGlobal();
  }
  if (name == "all-local") {
    return ace::PolicySpec::AllLocal();
  }
  if (name == "reconsider") {
    return ace::PolicySpec::Reconsider(threshold, 50'000'000);
  }
  if (name == "remote-home") {
    return ace::PolicySpec::RemoteHome(threshold);
  }
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name = "IMatMult";
  std::string policy_name = "move-limit";
  std::string scheduler = "affinity";
  int threads = 7;
  double scale = 1.0;
  int variant = 0;
  int threshold = 4;
  std::uint32_t page_size = 4096;
  std::uint32_t global_pages = 4096;
  bool pager = false;
  bool no_tlb = false;
  bool tlb_stats = false;
  bool trace = false;
  bool optimal = false;
  bool experiment = false;
  std::uint64_t seed = 0;
  ace::ServingOptions serving;
  bool serving_flags = false;
  std::string plan_text;
  std::string chaos_text;
  std::string trace_out;
  std::string jsonl_out;
  std::string heat_csv;
  std::string report_list;
  int top_n = 10;
  std::size_t trace_buffer = ace::Tracer::kDefaultCapacityPerProc;
  std::string live_out;
  std::int64_t sample_interval = 10'000'000;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) {
        return inline_value.c_str();
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--list") {
      for (const ace::AppFactory& f : ace::AllAppFactories()) {
        std::printf("%s\n", f()->name());
      }
      return 0;
    } else if (arg == "--app") {
      app_name = next();
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--variant") {
      variant = std::atoi(next());
    } else if (arg == "--policy") {
      policy_name = next();
    } else if (arg == "--threshold") {
      threshold = std::atoi(next());
    } else if (arg == "--page-size") {
      page_size = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--global-pages") {
      global_pages = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--scheduler") {
      scheduler = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--tenants") {
      serving.tenants = std::atoi(next());
      serving_flags = true;
    } else if (arg == "--skew") {
      serving.zipf_skew = std::atof(next());
      serving_flags = true;
    } else if (arg == "--churn") {
      serving.churn_phases = std::atoi(next());
      serving_flags = true;
    } else if (arg == "--requests") {
      serving.requests = std::strtoull(next(), nullptr, 0);
      serving_flags = true;
    } else if (arg == "--plan") {
      plan_text = next();
    } else if (arg == "--chaos") {
      chaos_text = next();
    } else if (arg == "--pager") {
      pager = true;
    } else if (arg == "--no-tlb") {
      no_tlb = true;
    } else if (arg == "--tlb-stats") {
      tlb_stats = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--jsonl-out") {
      jsonl_out = next();
    } else if (arg == "--heat-csv") {
      heat_csv = next();
    } else if (arg == "--report") {
      report_list = next();
    } else if (arg == "--top") {
      top_n = std::atoi(next());
    } else if (arg == "--trace-buffer") {
      trace_buffer = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--live-out") {
      live_out = next();
    } else if (arg == "--sample-interval") {
      sample_interval = std::strtoll(next(), nullptr, 0);
    } else if (arg == "--optimal") {
      optimal = true;
    } else if (arg == "--experiment") {
      experiment = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  std::unique_ptr<ace::App> app = ace::CreateAppByName(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown application '%s' (try --list)\n", app_name.c_str());
    return 2;
  }

  // The serving-workload shape, echoed in the JSONL meta header and the live-feed
  // tag (like --seed/--plan) so a serving run is replayable from its dump alone.
  const bool is_serving = app_name == "Serving" || app_name == "serving";
  std::string serving_desc;
  if (is_serving || serving_flags) {
    serving_desc = "ten" + std::to_string(serving.tenants) + "/z" +
                   ace::Fmt("%g", serving.zipf_skew) + "/ch" +
                   std::to_string(serving.churn_phases) + "/req" +
                   std::to_string(serving.requests) + "/seed" +
                   std::to_string(serving.seed);
  }

  ace::ExperimentOptions options;
  options.num_threads = threads;
  options.scale = scale;
  options.variant = variant;
  options.move_threshold = threshold;
  options.config.num_processors = threads;
  options.config.page_size = page_size;
  options.config.global_pages = global_pages;
  options.scheduler =
      scheduler == "migrating" ? ace::SchedulerKind::kMigrating : ace::SchedulerKind::kAffinity;
  options.serving = serving;

  options.enable_tlb = !no_tlb;

  if (experiment) {
    // With --live-out the three placement runs become three feed segments, all
    // through one writer (RunPlacement opens/closes each segment).
    ace::LiveStreamWriter live_writer;
    std::unique_ptr<ace::LiveSampler> sampler;
    if (!live_out.empty()) {
      if (!live_writer.Open(live_out, /*append=*/false)) {
        std::fprintf(stderr, "cannot open %s for live output\n", live_out.c_str());
        return 1;
      }
      ace::LiveSampler::Options so;
      so.interval_ns = sample_interval;
      so.hot_pages = static_cast<std::size_t>(top_n);
      so.tool = "ace_run";
      sampler = std::make_unique<ace::LiveSampler>(so, &live_writer);
      options.sampler = sampler.get();
    }
    ace::ExperimentResult r = ace::RunExperiment(app_name, options);
    ace::TextTable table({"Application", "Tglobal", "Tnuma", "Tlocal", "alpha", "beta",
                          "gamma", "alpha(ref)", "verified"});
    table.AddRow({app_name, ace::Fmt("%.3f", r.global.user_sec),
                  ace::Fmt("%.3f", r.numa.user_sec), ace::Fmt("%.3f", r.local.user_sec),
                  r.model.alpha_defined ? ace::Fmt("%.2f", r.model.alpha) : "na",
                  ace::Fmt("%.2f", r.model.beta), ace::Fmt("%.2f", r.model.gamma),
                  ace::Fmt("%.2f", r.numa.measured_alpha), r.AllOk() ? "ok" : "FAILED"});
    table.Print();
    if (sampler != nullptr) {
      live_writer.Close();
      if (!live_writer.ok()) {
        std::fprintf(stderr, "error writing live feed %s\n", live_out.c_str());
        return 1;
      }
      std::printf("live feed:      %s (3 segments)\n", live_out.c_str());
    }
    return r.AllOk() ? 0 : 1;
  }

  ace::Machine::Options mo;
  mo.config = options.config;
  mo.policy = ParsePolicy(policy_name, threshold);
  mo.enable_pager = pager;
  mo.enable_tlb = !no_tlb;
  mo.fault_seed = seed;
  // --chaos rides the same plan grammar: chaos items simply append to --plan, so
  // every downstream consumer (feed meta, JSONL dump, replay lines) sees one plan
  // string that reproduces the run exactly.
  if (!chaos_text.empty()) {
    plan_text = plan_text.empty() ? chaos_text : plan_text + ";" + chaos_text;
  }
  if (!plan_text.empty()) {
    std::string error;
    if (!ace::FaultPlan::Parse(plan_text, &mo.fault_plan, &error)) {
      std::fprintf(stderr, "bad --plan: %s\n", error.c_str());
      return 2;
    }
  }
  ace::Machine machine(mo);

  const bool want_obs = !trace_out.empty() || !jsonl_out.empty() || !heat_csv.empty() ||
                        !report_list.empty();
  if (want_obs) {
    ace::Observability& obs = machine.observability();
    obs.EnableHeat();
    if ((!trace_out.empty() || !jsonl_out.empty()) && !obs.EnableTracing(trace_buffer)) {
      std::fprintf(stderr,
                   "warning: event tracing compiled out (ACE_TRACE=OFF); "
                   "trace outputs will carry no events\n");
    }
  }

  std::unique_ptr<ace::RefTracer> tracer;
  if (trace || optimal) {
    tracer = std::make_unique<ace::RefTracer>(&machine);
    if (optimal) {
      tracer->EnableEpochTracking();
    }
  }

  // Live telemetry: stream an ace-live-v1 segment while the app runs. Heat profiling
  // feeds the hot-page and decision columns; counters and results stay byte-identical
  // to an unsampled run (tests/live_sampler_test.cc).
  ace::LiveStreamWriter live_writer;
  std::unique_ptr<ace::LiveSampler> sampler;
  if (!live_out.empty()) {
    if (!live_writer.Open(live_out, /*append=*/false)) {
      std::fprintf(stderr, "cannot open %s for live output\n", live_out.c_str());
      return 1;
    }
    ace::LiveSampler::Options so;
    so.interval_ns = sample_interval;
    so.hot_pages = static_cast<std::size_t>(top_n);
    so.tool = "ace_run";
    sampler = std::make_unique<ace::LiveSampler>(so, &live_writer);
    machine.observability().EnableHeat();
    sampler->SetSource(&ace::Machine::LiveCaptureThunk, &machine);
    ace::LiveRunMeta meta;
    meta.app = app_name;
    meta.policy = policy_name;
    meta.procs = threads;
    meta.threads = threads;
    meta.pages = global_pages;
    meta.page_size = page_size;
    meta.seed = seed;
    meta.fault_plan = plan_text;
    meta.tlb = machine.tlb_enabled();
    meta.tag = serving_desc;
    sampler->BeginRun(std::move(meta));
  }

  ace::AppConfig cfg;
  cfg.num_threads = threads;
  cfg.scale = scale;
  cfg.variant = variant;
  cfg.serving = serving;
  cfg.runtime.scheduler = options.scheduler;
  cfg.runtime.sampler = sampler.get();
  ace::AppResult result = app->Run(machine, cfg);

  if (sampler != nullptr) {
    sampler->EndRun(result.ok ? "ok" : "failed");
  }

  std::printf("app:            %s (%s)\n", app_name.c_str(), result.detail.c_str());
  std::printf("policy:         %s (threshold %d)\n", policy_name.c_str(), threshold);
  std::printf("machine:        %d processors, %u-byte pages, %u global pages%s\n", threads,
              page_size, global_pages, pager ? ", pager on" : "");
  std::printf("seed:           %llu%s%s\n", (unsigned long long)seed,
              plan_text.empty() ? "" : "   fault plan: ",
              plan_text.empty() ? "" : plan_text.c_str());
  if (!serving_desc.empty()) {
    std::printf("serving:        %s\n", serving_desc.c_str());
  }
  std::printf("user time:      %.4f s   system time: %.4f s\n",
              machine.clocks().TotalUser() * 1e-9, machine.clocks().TotalSystem() * 1e-9);
  const ace::MachineStats& s = machine.stats();
  std::printf("local fraction: %.3f\n", s.MeasuredAlpha());
  std::printf("faults:         %llu   copies: %llu   syncs: %llu   moves: %llu   pinned: %llu\n",
              (unsigned long long)s.page_faults, (unsigned long long)s.page_copies,
              (unsigned long long)s.page_syncs, (unsigned long long)s.ownership_moves,
              (unsigned long long)s.pages_pinned);
  std::printf("bus traffic:    %.2f MB (utilization %.1f%%)\n",
              machine.bus().total_bytes() / 1e6, 100.0 * machine.bus().Utilization());
  if (machine.pager() != nullptr) {
    std::printf("pager:          %llu pageouts, %llu pageins\n",
                (unsigned long long)machine.pager()->stats().pageouts,
                (unsigned long long)machine.pager()->stats().pageins);
  }
  if (machine.fault_injector() != nullptr) {
    std::printf("degradation:    %llu fired faults, %llu global fallbacks, "
                "%llu copy failures, %llu pool retries, %llu oom faults\n",
                (unsigned long long)machine.fault_injector()->total_fires(),
                (unsigned long long)s.degraded_global_fallbacks,
                (unsigned long long)s.degraded_copy_failures,
                (unsigned long long)s.degraded_pool_retries,
                (unsigned long long)s.degraded_oom_faults);
  }
  if (machine.chaos() != nullptr) {
    std::printf("chaos:          %zu planned events, %llu transitions applied, "
                "%llu pages evacuated\n",
                machine.chaos()->num_events(), (unsigned long long)s.chaos_events,
                (unsigned long long)s.evacuated_pages);
  }
  if (machine.recovery() != nullptr) {
    // Permanent chaos: split the outcome — evacuated pages (above) moved intact
    // ahead of a drain; recovered pages were reconstructed from a mirror, journal
    // or replica after the loss; lost pages had no mirror and degraded to GLOBAL
    // over stale content.
    std::printf("recovery:       %llu pages journaled (%llu B mirrored), "
                "%llu recovered, %llu lost, %llu checksum failures, "
                "dead nodes 0x%x\n",
                (unsigned long long)s.replicated_pages,
                (unsigned long long)s.journal_bytes,
                (unsigned long long)s.recovered_pages,
                (unsigned long long)s.lost_pages,
                (unsigned long long)s.checksum_failures,
                machine.recovery()->dead_nodes());
  }
  if (tlb_stats) {
    const ace::TlbStats t = machine.tlb_stats();
    std::printf("tlb:            %s%s\n",
                ace::FormatTlbCounters(t.hits, t.misses, t.fills, t.conflict_evictions,
                                       t.shootdown_pages, t.shootdown_hits,
                                       t.run_flushes, t.batched_refs)
                    .c_str(),
                machine.tlb_enabled() ? "" : " (tlb disabled)");
  }
  if (sampler != nullptr) {
    live_writer.Close();
    if (!live_writer.ok()) {
      std::fprintf(stderr, "error writing live feed %s\n", live_out.c_str());
      return 1;
    }
    std::printf("live feed:      %s (%llu samples, every %lld ns)\n", live_out.c_str(),
                (unsigned long long)sampler->samples(), (long long)sample_interval);
  }

  if (want_obs) {
    ace::Observability& obs = machine.observability();
    const ace::HeatProfile& heat = obs.heat();

    // Cross-check: the heat profile records references at the same point as
    // MachineStats, so the two locality fractions must agree to double precision.
    double heat_alpha = heat.AggregateAlpha();
    double stats_alpha = s.MeasuredAlpha();
    std::printf("heat alpha:     %.9f (stats %.9f)\n", heat_alpha, stats_alpha);
    if (std::fabs(heat_alpha - stats_alpha) > 1e-9) {
      std::fprintf(stderr, "ERROR: heat-profile alpha diverges from MeasuredAlpha\n");
      return 1;
    }

    // Ring pressure: a nonzero drop count means the per-processor rings wrapped and
    // any report built from them is missing that many oldest events.
    if (obs.tracer().configured()) {
      std::printf("trace rings:    %s\n",
                  ace::FormatTraceRingCounters(obs.tracer().total_emitted(),
                                               obs.tracer().dropped())
                      .c_str());
    }

    ace::ExportContext ctx;
    ctx.tracer = obs.tracing() || obs.tracer().total_emitted() > 0 ? &obs.tracer() : nullptr;
    ctx.heat = &heat;
    ctx.stats = &s;
    ctx.num_processors = threads;
    ctx.page_size = page_size;
    ctx.num_pages = global_pages;
    ctx.policy = policy_name.c_str();
    ctx.app = app_name.c_str();
    ctx.seed = seed;
    ctx.fault_plan = plan_text.c_str();
    ctx.serving = serving_desc.c_str();

    auto write_file = [&](const std::string& path, const char* what, auto writer) {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for %s output\n", path.c_str(), what);
        std::exit(1);
      }
      writer(out);
      std::printf("%-9s       %s\n", what, path.c_str());
    };
    if (!trace_out.empty()) {
      write_file(trace_out, "trace", [&](std::ostream& o) { ace::WriteChromeTrace(ctx, o); });
    }
    if (!jsonl_out.empty()) {
      write_file(jsonl_out, "jsonl", [&](std::ostream& o) { ace::WriteJsonl(ctx, o); });
    }
    if (!heat_csv.empty()) {
      write_file(heat_csv, "heat-csv", [&](std::ostream& o) { ace::WriteHeatCsv(heat, o); });
    }

    // --report hot-pages,locality,decisions
    std::string rest = report_list;
    while (!rest.empty()) {
      auto comma = rest.find(',');
      std::string name = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      if (name == "hot-pages") {
        std::printf("\n%s", ace::RenderHotPages(heat, static_cast<std::size_t>(top_n)).c_str());
      } else if (name == "locality") {
        std::printf("\n%s", ace::RenderLocality(s, threads).c_str());
      } else if (name == "decisions") {
        std::printf("\n%s", ace::RenderDecisions(heat).c_str());
      } else if (!name.empty()) {
        std::fprintf(stderr, "unknown report '%s' (hot-pages, locality, decisions)\n",
                     name.c_str());
        return 2;
      }
    }
  }

  if (trace) {
    std::printf("\n--- trace report ---\n%s", tracer->Report().c_str());
  }
  if (optimal) {
    ace::OptimalEstimate est = tracer->EstimateOptimal();
    std::printf("\n--- optimal placement estimate ---\n");
    std::printf("referenced pages:        %llu (optimal plan all-global for %llu)\n",
                (unsigned long long)est.pages, (unsigned long long)est.pages_best_global);
    std::printf("oracle memory+move time: %.4f s\n", est.total_sec);
  }
  return result.ok ? 0 : 1;
}
