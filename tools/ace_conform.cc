// Differential conformance checker for the NUMA cache protocol.
//
// Drives NumaManager and the executable reference model (src/conformance) with the
// same seeded random operation stream and compares the full observable state after
// every operation. On divergence the stream is shrunk to a minimal repro and printed.
//
// Typical runs:
//   ace_conform --seed 7 --ops 12000                  # all shipped policies
//   ace_conform --policy move-limit --threshold 1     # pin-happy variant
//   ace_conform --policy move-limit --plan skip-sync@always --expect-divergence
//
// --plan takes a fault-plan string (src/inject/fault_plan.h grammar) armed on the
// real side only; any schedule that fires must surface as a divergence. --seed also
// seeds the plan's probability schedules.
//
// To reproduce a reported divergence, re-run with the printed seed and policy; the
// shrink is deterministic and prints the same minimal operation sequence.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/conformance/differ.h"
#include "src/obs/snapshot.h"

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::size_t ops = 12000;
  std::string policy = "all";
  int threshold = 4;
  std::string plan;
  int tlb = -1;  // -1 = derived from the seed (the per-seed ACE_TLB flip), 0/1 forced
  int durability = -1;  // -1 = derived from the seed, 0/1 forced
  bool expect_divergence = false;
  bool quiet = false;
};

// The per-seed ACE_TLB flip: half of all seeds run with the software-TLB mirror
// attached (ConformConfig::tlb), so sweeps continuously exercise the shootdown
// discipline the Machine fast path depends on. SplitMix64-style mix so neighboring
// seeds don't all land on the same side.
bool DeriveTlb(std::uint64_t seed) {
  std::uint64_t z = (seed + 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
  return ((z ^ (z >> 31)) & 1) != 0;
}

// The analogous per-seed durability flip (ConformConfig::durability): half of all
// seeds arm the ReplicaManager and mix kill-node / corrupt-page operations into the
// stream, so sweeps continuously exercise the recovery transitions too. A different
// mix constant keeps the two flips uncorrelated across seeds.
bool DeriveDurability(std::uint64_t seed) {
  std::uint64_t z = (seed + 0xbf58476d1ce4e5b9ULL) * 0x94d049bb133111ebULL;
  return ((z ^ (z >> 31)) & 1) != 0;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--ops N] [--policy move-limit|remote-home|"
               "all-global|all-local|all]\n"
               "          [--threshold N] [--plan FAULT-PLAN] [--tlb|--no-tlb]\n"
               "          [--durability|--no-durability] [--expect-divergence] [--quiet]\n"
               "  --tlb / --no-tlb  force the software-TLB shootdown mirror on or off\n"
               "                    (default: flipped pseudo-randomly per seed)\n"
               "  --durability / --no-durability\n"
               "                    force the durability substrate (kill-node and\n"
               "                    corrupt-page operations) on or off (default: flipped\n"
               "                    pseudo-randomly per seed)\n",
               argv0);
  std::exit(2);
}

bool ParseOptions(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      opt->seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--ops") {
      opt->ops = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--policy") {
      opt->policy = next();
    } else if (arg == "--threshold") {
      opt->threshold = std::atoi(next());
    } else if (arg == "--plan") {
      opt->plan = next();
    } else if (arg == "--tlb") {
      opt->tlb = 1;
    } else if (arg == "--no-tlb") {
      opt->tlb = 0;
    } else if (arg == "--durability") {
      opt->durability = 1;
    } else if (arg == "--no-durability") {
      opt->durability = 0;
    } else if (arg == "--expect-divergence") {
      opt->expect_divergence = true;
    } else if (arg == "--quiet") {
      opt->quiet = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseOptions(argc, argv, &opt)) {
    Usage(argv[0]);
  }

  ace::FaultPlan plan;
  if (!opt.plan.empty()) {
    std::string error;
    if (!ace::FaultPlan::Parse(opt.plan, &plan, &error)) {
      std::fprintf(stderr, "bad --plan: %s\n", error.c_str());
      return 2;
    }
  }

  std::vector<ace::RefModel::PolicyKind> kinds;
  if (opt.policy == "all") {
    kinds = {ace::RefModel::PolicyKind::kMoveLimit, ace::RefModel::PolicyKind::kRemoteHome,
             ace::RefModel::PolicyKind::kAllGlobal, ace::RefModel::PolicyKind::kAllLocal};
  } else if (opt.policy == "move-limit") {
    kinds = {ace::RefModel::PolicyKind::kMoveLimit};
  } else if (opt.policy == "remote-home") {
    kinds = {ace::RefModel::PolicyKind::kRemoteHome};
  } else if (opt.policy == "all-global") {
    kinds = {ace::RefModel::PolicyKind::kAllGlobal};
  } else if (opt.policy == "all-local") {
    kinds = {ace::RefModel::PolicyKind::kAllLocal};
  } else {
    Usage(argv[0]);
  }

  bool failed = false;
  for (ace::RefModel::PolicyKind kind : kinds) {
    ace::ConformConfig config;
    config.policy = kind;
    config.move_threshold = opt.threshold;
    config.plan = plan;
    config.fault_seed = opt.seed;
    config.tlb = opt.tlb < 0 ? DeriveTlb(opt.seed) : opt.tlb != 0;
    config.durability = opt.durability < 0 ? DeriveDurability(opt.seed) : opt.durability != 0;

    std::vector<ace::ConformOp> ops = ace::GenerateOps(config, opt.seed, opt.ops);
    ace::MachineStats stats;
    std::optional<ace::Divergence> d = ace::RunOps(config, ops, &stats);
    std::string name = ace::PolicyKindName(kind);

    if (!d.has_value()) {
      if (opt.expect_divergence) {
        std::printf("policy %s: %zu ops, NO divergence but one was expected\n", name.c_str(),
                    ops.size());
        failed = true;
      } else if (!opt.quiet) {
        std::printf("policy %s: %zu ops, no divergence (seed %llu, tlb %s, durability %s)\n",
                    name.c_str(), ops.size(), static_cast<unsigned long long>(opt.seed),
                    config.tlb ? "on" : "off", config.durability ? "on" : "off");
        std::printf("  %s\n", ace::FormatProtocolCounters(stats).c_str());
      }
      continue;
    }

    std::printf(
        "policy %s: DIVERGENCE at op %zu (seed %llu, threshold %d, plan %s, tlb %s, "
        "durability %s)\n",
        name.c_str(), d->op_index, static_cast<unsigned long long>(opt.seed), opt.threshold,
        opt.plan.empty() ? "-" : opt.plan.c_str(), config.tlb ? "on" : "off",
        config.durability ? "on" : "off");
    std::printf("  %s\n", d->what.c_str());
    std::vector<ace::ConformOp> repro = ace::ShrinkOps(config, std::move(ops));
    std::printf("shrunk repro (%zu ops):\n", repro.size());
    for (std::size_t i = 0; i < repro.size(); ++i) {
      std::printf("  [%zu] %s\n", i, ace::FormatOp(repro[i]).c_str());
    }
    std::printf(
        "rerun: ace_conform --seed %llu --ops %zu --policy %s --threshold %d %s %s%s%s\n",
        static_cast<unsigned long long>(opt.seed), opt.ops, name.c_str(), opt.threshold,
        config.tlb ? "--tlb" : "--no-tlb", config.durability ? "--durability" : "--no-durability",
        opt.plan.empty() ? "" : " --plan ", opt.plan.empty() ? "" : opt.plan.c_str());
    if (!opt.expect_divergence) {
      failed = true;
    }
  }

  return failed ? 1 : 0;
}
